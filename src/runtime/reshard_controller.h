// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Elastic-reshard policy: when to change the live shard count. The
// controller is a pure router-side state machine — it only *decides*;
// executing a resize (seal, drain, migrate, flip) is the shard runtime's
// job (see ShardRuntime::ExecuteResize in shard_runtime.cc).
//
// Signals, sampled by the router every `check_every` routed events:
//   - the worst queue fill fraction across live shards (backlog building
//     faster than workers drain it), and
//   - the worst overload-guard ladder level across live shards (a shard
//     already shedding or panicking under its latency/memory bounds).
//
// Hysteresis ladder: a scale-up needs `grow_after` *consecutive* hot
// checks, a scale-down `shrink_after` consecutive idle checks, and any
// decision starts a dwell window of `min_dwell` routed events during which
// the controller stays silent — resizing is a stop-the-world pause plus a
// state migration, so flapping on a boundary signal must be structurally
// impossible, mirroring the escalate/recover discipline of the per-shard
// OverloadGuard.
//
// Determinism: decisions depend on live queue depths and guard levels,
// which depend on thread scheduling — a dynamically resized run is NOT
// bit-reproducible by re-running it. Reproducibility is recovered one
// level up: the runtime reports every executed resize through
// ShardRuntimeOptions::resize_tap, the trace recorder persists the
// (sequence, shard-count) pairs, and replay re-applies them as a
// *scripted* schedule (fault-DSL `resize` entries), which is exact.

#ifndef CEPSHED_RUNTIME_RESHARD_CONTROLLER_H_
#define CEPSHED_RUNTIME_RESHARD_CONTROLLER_H_

#include <cstdint>

namespace cepshed {

/// \brief Elasticity configuration shared by the dynamic controller and
/// scripted (fault-DSL) resizes.
struct ReshardOptions {
  /// Turns the dynamic controller on. Scripted `resize` fault entries work
  /// regardless; they only need min/max bounds from here.
  bool enabled = false;
  /// Bounds on the live shard count. Scripted and dynamic resizes are both
  /// clamped into [min_shards, max(max_shards, initial num_shards)].
  /// min_shards >= 1 always: shard 0 never retires (null partition keys
  /// are pinned to it). max_shards == 0 means "initial num_shards" — no
  /// headroom, which disables growth.
  int min_shards = 1;
  int max_shards = 0;
  /// Routed events between controller checks.
  uint64_t check_every = 256;
  /// Consecutive hot checks before scaling up by one shard.
  int grow_after = 3;
  /// Consecutive idle checks before scaling down by one shard.
  int shrink_after = 8;
  /// Routed events after a resize during which no further resize fires.
  uint64_t min_dwell = 2048;
  /// Queue fill fraction that reads as hot / idle.
  double queue_grow_fraction = 0.75;
  double queue_shrink_fraction = 0.10;
  /// Guard ladder level (GuardLevel as int) that reads as hot on its own.
  int guard_hot_level = 2;  // kPanic
};

/// \brief The scale-up/scale-down decision ladder (see file comment).
class ReshardController {
 public:
  /// One check's observations, aggregated over live shards by the router.
  struct Signals {
    /// max over live shards of queue SizeApprox / capacity.
    double max_queue_fill = 0.0;
    /// max over live shards of the published guard ladder level.
    int max_guard_level = 0;
  };

  explicit ReshardController(const ReshardOptions& opts) : opts_(opts) {}

  /// Feeds one check at routed-event ordinal `seq` with `live` current
  /// shards; returns the desired delta: +1, -1, or 0. The caller is
  /// responsible for clamping against its effective bounds (the controller
  /// already respects them, so a nonzero return is actionable).
  int Decide(uint64_t seq, const Signals& sig, int live, int effective_max);

  int hot_streak() const { return hot_streak_; }
  int idle_streak() const { return idle_streak_; }

 private:
  ReshardOptions opts_;
  int hot_streak_ = 0;
  int idle_streak_ = 0;
  uint64_t last_resize_seq_ = 0;
  bool resized_once_ = false;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_RESHARD_CONTROLLER_H_
