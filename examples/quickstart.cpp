// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Quickstart: parse a CEP query, evaluate it over a generated stream, then
// enable hybrid load shedding under a latency bound and compare the result
// quality against random input shedding.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "src/runtime/experiment.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

using namespace cepshed;

int main() {
  // 1. The schema and a generated event stream (dataset DS1 of the paper).
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 30000;
  gen.seed = 11;
  const EventStream train = GenerateDs1(schema, gen);
  gen.seed = 12;
  const EventStream test = GenerateDs1(schema, gen);

  // 2. A query in the SASE-style surface language.
  Result<Query> query = queries::Q1("8ms");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query: %s\n", query->name.c_str());

  // 3. Plain evaluation: compile and process the stream event by event.
  auto nfa = Nfa::Compile(*query, &schema);
  if (!nfa.ok()) {
    std::fprintf(stderr, "compile error: %s\n", nfa.status().ToString().c_str());
    return 1;
  }
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> matches;
  for (const EventPtr& e : test) engine.Process(e, &matches);
  std::printf("Exhaustive evaluation: %zu matches, peak state %zu partial matches\n",
              matches.size(), engine.stats().peak_pms);

  // 4. Load shedding under a latency bound: the harness trains the cost
  //    model offline, establishes ground truth, and runs strategies.
  HarnessOptions opts;
  ExperimentHarness harness(&schema, *query, opts);
  if (Status st = harness.Prepare(train, test); !st.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("No-shedding average latency: %.1f cost units; %zu truth matches\n",
              harness.BaselineLatency(), harness.truth().size());
  std::printf("Cost model: trained in %.2fs\n", harness.model().train_seconds());

  std::printf("\n%-8s %8s %10s %12s %12s\n", "strategy", "recall", "throughput",
              "shed-events", "shed-PMs");
  for (StrategyKind kind :
       {StrategyKind::kRI, StrategyKind::kSI, StrategyKind::kRS, StrategyKind::kSS,
        StrategyKind::kHybrid}) {
    const ExperimentResult r = harness.RunBound(kind, /*bound_fraction=*/0.5);
    std::printf("%-8s %7.1f%% %9.0f/s %11.1f%% %11.1f%%\n", r.name.c_str(),
                100.0 * r.quality.recall, r.throughput_eps,
                100.0 * r.shed_event_ratio, 100.0 * r.shed_pm_ratio);
  }
  return 0;
}
