// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/query/lexer.h"

#include <cctype>
#include <cstdlib>

namespace cepshed {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kIdent) return false;
  if (token.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, size_t offset, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    t.text = std::move(text);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- or //
    if ((c == '-' && i + 1 < n && input[i + 1] == '-') ||
        (c == '/' && i + 1 < n && input[i + 1] == '/')) {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      push(TokenKind::kIdent, start, std::string(input.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      }
      Token t;
      t.offset = start;
      t.text = std::string(input.substr(i, j - i));
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.offset = start;
      t.text = std::string(input.substr(i + 1, j - i - 1));
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    // Multi-byte unicode operators used in the paper's typography.
    auto match_utf8 = [&](std::string_view seq) {
      return input.substr(i).substr(0, seq.size()) == seq;
    };
    if (match_utf8("¬")) {  // ¬
      push(TokenKind::kBang, start);
      i += 2;
      continue;
    }
    if (match_utf8("∈")) {  // ∈
      push(TokenKind::kIn, start);
      i += 3;
      continue;
    }
    if (match_utf8("≤")) {  // ≤
      push(TokenKind::kLe, start);
      i += 3;
      continue;
    }
    if (match_utf8("≥")) {  // ≥
      push(TokenKind::kGe, start);
      i += 3;
      continue;
    }
    if (match_utf8("≠")) {  // ≠
      push(TokenKind::kNe, start);
      i += 3;
      continue;
    }
    ++i;
    switch (c) {
      case '(': push(TokenKind::kLParen, start); break;
      case ')': push(TokenKind::kRParen, start); break;
      case '[': push(TokenKind::kLBracket, start); break;
      case ']': push(TokenKind::kRBracket, start); break;
      case '{': push(TokenKind::kLBrace, start); break;
      case '}': push(TokenKind::kRBrace, start); break;
      case ',': push(TokenKind::kComma, start); break;
      case '.': push(TokenKind::kDot, start); break;
      case '+': push(TokenKind::kPlus, start); break;
      case '-': push(TokenKind::kMinus, start); break;
      case '*': push(TokenKind::kStar, start); break;
      case '/': push(TokenKind::kSlash, start); break;
      case '%': push(TokenKind::kPercent, start); break;
      case '=': push(TokenKind::kEq, start); break;
      case '!':
        if (i < n && input[i] == '=') {
          push(TokenKind::kNe, start);
          ++i;
        } else {
          push(TokenKind::kBang, start);
        }
        break;
      case '<':
        if (i < n && input[i] == '=') {
          push(TokenKind::kLe, start);
          ++i;
        } else if (i < n && input[i] == '>') {
          push(TokenKind::kNe, start);
          ++i;
        } else {
          push(TokenKind::kLt, start);
        }
        break;
      case '>':
        if (i < n && input[i] == '=') {
          push(TokenKind::kGe, start);
          ++i;
        } else {
          push(TokenKind::kGt, start);
        }
        break;
      default:
        return Status::ParseError("unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace cepshed
