// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/ds2.h"

namespace cepshed {

Schema MakeDs2Schema() {
  Schema schema;
  for (const char* t : {"A", "B", "C", "D"}) {
    auto r = schema.AddEventType(t);
    (void)r;
  }
  for (const char* a : {"ID", "x", "y", "v"}) {
    auto r = schema.AddAttribute(a, ValueType::kDouble);
    (void)r;
  }
  return schema;
}

EventStream GenerateDs2(const Schema& schema, const Ds2Options& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int id_attr = schema.AttributeIndex("ID");
  const int x_attr = schema.AttributeIndex("x");
  const int y_attr = schema.AttributeIndex("y");
  const int v_attr = schema.AttributeIndex("v");

  // Mixture draw per Table II: 33% in (0,2], 67% in (2,4].
  auto draw_xy = [&]() {
    return rng.Bernoulli(0.33) ? rng.UniformDouble(0.0, 2.0)
                               : rng.UniformDouble(2.0, 4.0);
  };
  auto draw_two_point = [&](double p_first, double first, double second) {
    return rng.Bernoulli(p_first) ? first : second;
  };

  for (size_t i = 0; i < options.num_events; ++i) {
    const int type = static_cast<int>(rng.UniformInt(0, 3));
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] =
        Value(static_cast<double>(rng.UniformInt(1, options.num_ids)));
    switch (type) {
      case 0:  // A: x, y
        attrs[static_cast<size_t>(x_attr)] = Value(draw_xy());
        attrs[static_cast<size_t>(y_attr)] = Value(draw_xy());
        break;
      case 1:  // B: x, y, v
        attrs[static_cast<size_t>(x_attr)] = Value(draw_xy());
        attrs[static_cast<size_t>(y_attr)] = Value(draw_xy());
        attrs[static_cast<size_t>(v_attr)] = Value(draw_two_point(0.33, 2.0, 5.0));
        break;
      case 2:  // C: v
        attrs[static_cast<size_t>(v_attr)] = Value(draw_two_point(0.33, 3.0, 5.0));
        break;
      default:  // D: v
        attrs[static_cast<size_t>(v_attr)] = Value(draw_two_point(0.33, 5.0, 2.0));
        break;
    }
    const Timestamp ts = static_cast<Timestamp>(i) * options.event_gap;
    Status st = stream.Emit(type, ts, std::move(attrs));
    (void)st;
  }
  return stream;
}

Result<EventStream> LoadDs2Csv(const Schema& schema, const std::string& path,
                               CsvReadStats* stats) {
  CsvReadOptions options;
  options.lenient = true;
  return ReadCsvFile(schema, path, options, stats);
}


}  // namespace cepshed
