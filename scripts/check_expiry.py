#!/usr/bin/env python3
"""CI gate: deadline-ordered expiry must beat the O(live) window sweep.

Reads a google-benchmark JSON file containing BM_ExpirySweep/{0,1} rows
(raw repetitions or aggregates): /0 finds expired partial matches by
scanning every live match at each sweep tick, /1 through the
hierarchical timing wheel (DESIGN.md §3.9). Both arms run the identical
Kleene-heavy large-window stream and — by the parity contract pinned in
expiry_wheel_test and the differential harness — kill the same matches
at the same ticks with the same booked cost units; the bench itself
aborts if the arms' emitted-match counts ever disagree. The /1 : /0
events-per-second ratio is therefore the pure data-structure speedup of
O(expired) reaping over the O(live) scan.

Per-arm maxima over repetitions are used: the statistic least sensitive
to noisy-neighbour drift on shared CI runners.

Usage: check_expiry.py BENCH_JSON [--min-speedup 1.5]
"""

import argparse
import json
import re
import sys


def collect(benchmarks):
    """Map arm (0=scan, 1=wheel) -> max items_per_second."""
    best = {}
    for b in benchmarks:
        m = re.match(r"^BM_ExpirySweep/([01])(?:_(\w+))?$", b["name"])
        if not m:
            continue
        arg, agg = int(m.group(1)), m.group(2)
        if agg in ("stddev", "cv"):
            continue
        ips = b.get("items_per_second")
        if ips is None:
            continue
        ips = float(ips)
        if arg not in best or ips > best[arg]:
            best[arg] = ips
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    best = collect(data.get("benchmarks", []))

    if 0 not in best or 1 not in best:
        print("error: no complete BM_ExpirySweep/{0,1} pair in input",
              file=sys.stderr)
        return 2

    scan, wheel = best[0], best[1]
    speedup = wheel / scan
    ok = speedup >= args.min_speedup
    print(f"BM_ExpirySweep: scan {scan / 1e3:.1f}k/s, "
          f"wheel {wheel / 1e3:.1f}k/s -> {speedup:.2f}x "
          f"(threshold {args.min_speedup:.2f}) [{'OK' if ok else 'FAIL'}]")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
