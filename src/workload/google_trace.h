// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Synthetic cluster-monitoring stream standing in for the Google
// Cluster-Usage Traces [35] (not available offline; see DESIGN.md §3).
// Tasks run through the trace's lifecycle state machine —
// submit -> schedule(machine) -> {finish | evict -> resubmit | fail} —
// and eviction storms (maintenance bursts) produce the repeated
// evict/reschedule chains that the paper's Listing-3 query detects.

#ifndef CEPSHED_WORKLOAD_GOOGLE_TRACE_H_
#define CEPSHED_WORKLOAD_GOOGLE_TRACE_H_

#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/rng.h"
#include "src/workload/csv.h"

namespace cepshed {

/// Builds the cluster schema: types Submit, Schedule, Evict, Fail, Finish;
/// attributes task, machine, priority.
Schema MakeGoogleTraceSchema();

/// \brief Generator configuration.
struct GoogleTraceOptions {
  size_t num_events = 40000;
  int num_machines = 8;
  int max_live_tasks = 300;
  /// Mean microseconds between lifecycle transitions. The default spreads
  /// 40k events over roughly 8 hours, so the 1h query window, the eviction
  /// storms, and the cost model's time slices are all meaningful.
  double base_gap = 7e5;
  /// Baseline eviction probability at a scheduling decision...
  double evict_prob = 0.25;
  /// ...multiplied during eviction storms...
  double storm_evict_prob = 0.7;
  /// ...which last this long, this often.
  Duration storm_length = Minutes(20);
  Duration storm_period = Hours(2);
  /// Probability a task fails (instead of finishing) after its third
  /// scheduling.
  double fail_prob = 0.3;
  uint64_t seed = 4;
};

/// Generates a synthetic cluster lifecycle stream.
EventStream GenerateGoogleTrace(const Schema& schema, const GoogleTraceOptions& options);

/// Loads a cluster lifecycle CSV (WriteCsv layout over
/// MakeGoogleTraceSchema()) leniently: malformed rows are skipped and
/// counted in *stats (may be null). `schema` must outlive the stream.
Result<EventStream> LoadGoogleTraceCsv(const Schema& schema, const std::string& path,
                                       CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_GOOGLE_TRACE_H_
