// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Strategy grid: every registered shedding strategy — the paper's five
// baselines plus the learned hSPICE/pSPICE shedders — over three datasets
// under two latency bounds, all driven through the ShedderRegistry spec
// path (the same path `--shedder` takes in the CLI). The JSON written to
// argv[1] (default BENCH_strategies.json) records recall, throughput and
// shed ratios per (dataset, bound, strategy) cell; scripts/
// check_strategy_grid.py gates on it: the learned shedders must beat
// their unlearned counterparts (hSPICE > RI on recall, pSPICE > RS) at an
// equal bound on at least one dataset, i.e. learning the utility/
// completion structure must buy measurable quality at the same budget.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace cepshed {
namespace {

const std::vector<std::string>& GridSpecs() {
  static const std::vector<std::string> kSpecs = {
      "ri", "si", "rs", "ss", "hybrid", "hspice", "pspice"};
  return kSpecs;
}

std::string BoundKey(double bound) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f", bound);
  return buf;
}

void RunDataset(const std::string& name, bench::PreparedExperiment* exp,
                const std::vector<double>& bounds, std::string* json,
                bool last_dataset) {
  std::printf("# %s: no-shedding avg latency = %.1f cost units, truth = %zu\n",
              name.c_str(), exp->harness->BaselineLatency(),
              exp->harness->truth().size());
  bench::Header("Strategy grid", name + ", bounds on the average latency",
                bench::kResultColumns);
  *json += "    \"" + name + "\": {\n";
  for (size_t b = 0; b < bounds.size(); ++b) {
    *json += "      \"" + BoundKey(bounds[b]) + "\": {\n";
    for (size_t s = 0; s < GridSpecs().size(); ++s) {
      const std::string& spec = GridSpecs()[s];
      const auto r = exp->harness->RunBoundSpec(spec, bounds[b]);
      if (!r.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", spec.c_str(),
                     name.c_str(), r.status().ToString().c_str());
        std::abort();
      }
      bench::PrintResultRow(BoundKey(bounds[b]), *r);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "        \"%s\": {\"recall\": %.4f, \"precision\": %.4f, "
                    "\"throughput_eps\": %.0f, \"shed_event_ratio\": %.4f, "
                    "\"shed_pm_ratio\": %.4f, \"violation_ratio\": %.4f}%s\n",
                    spec.c_str(), r->quality.recall, r->quality.precision,
                    r->throughput_eps, r->shed_event_ratio, r->shed_pm_ratio,
                    r->bound_violation_ratio,
                    s + 1 < GridSpecs().size() ? "," : "");
      *json += buf;
    }
    *json += b + 1 < bounds.size() ? "      },\n" : "      }\n";
  }
  *json += last_dataset ? "    }\n" : "    },\n";
}

}  // namespace
}  // namespace cepshed

int main(int argc, char** argv) {
  using namespace cepshed;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_strategies.json";
  const std::vector<double> bounds = {0.6, 0.4};

  std::string json = "{\n";
  json += "  \"bench\": \"strategy_grid\",\n";
  json += "  \"stat\": \"average\",\n";
  json += "  \"datasets\": {\n";

  {
    Ds1Options gen;
    gen.num_events = 30000;
    auto exp = bench::PrepareDs1(*queries::Q1("8ms"), gen);
    RunDataset("ds1_q1", &exp, bounds, &json, false);
  }
  {
    Ds2Options gen;
    gen.num_events = 30000;
    auto exp = bench::PrepareDs2(*queries::Q3("8ms"), gen);
    RunDataset("ds2_q3", &exp, bounds, &json, false);
  }
  {
    CitibikeOptions gen;
    gen.num_events = 20000;
    auto exp = bench::PrepareCitibike(*queries::CitibikeHotPaths(5, 8), gen);
    RunDataset("citibike", &exp, bounds, &json, true);
  }

  json += "  }\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
