#!/usr/bin/env python3
"""CI gate: the batched ingest front end must beat the scalar one.

Reads a google-benchmark JSON file containing BM_BatchIngest/{0,1} rows
(raw repetitions or aggregates): /0 is the classic front end (istream
CSV reader + per-event pred-VM evaluation of the filter predicates), /1
the batched one (memory-mapped zero-copy reader + SoA column compare
kernels). Both arms report events per second over the identical trace
and predicate mix — the bench aborts if their pass counts ever disagree
— so the /1 : /0 ratio is the ingest+eval speedup.

The end-to-end BM_EngineBatchPipeline pair in the same JSON is reported
when present but never gated: its ratio is diluted by match-store and
join work that is identical in both arms by the cost-parity contract.

Per-arm maxima over repetitions are used: the statistic least sensitive
to noisy-neighbour drift on shared CI runners.

Usage: check_batch_ingest.py BENCH_JSON [--min-speedup 1.5]
"""

import argparse
import json
import re
import sys


def collect(benchmarks):
    """Map benchmark base name -> {arg: max items_per_second}."""
    best = {}
    for b in benchmarks:
        m = re.match(r"^(BM_BatchIngest|BM_EngineBatchPipeline)/([01])(?:_(\w+))?$",
                     b["name"])
        if not m:
            continue
        name, arg, agg = m.group(1), int(m.group(2)), m.group(3)
        if agg in ("stddev", "cv"):
            continue
        ips = b.get("items_per_second")
        if ips is None:
            continue
        ips = float(ips)
        arms = best.setdefault(name, {})
        if arg not in arms or ips > arms[arg]:
            arms[arg] = ips
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    best = collect(data.get("benchmarks", []))

    pairs = {n: arms for n, arms in best.items() if 0 in arms and 1 in arms}
    if "BM_BatchIngest" not in pairs:
        print("error: no complete BM_BatchIngest/{0,1} pair in input",
              file=sys.stderr)
        return 2

    ok = True
    for name in sorted(pairs):
        scalar, batched = pairs[name][0], pairs[name][1]
        speedup = batched / scalar
        if name == "BM_BatchIngest":
            verdict = "OK" if speedup >= args.min_speedup else "FAIL"
            if speedup < args.min_speedup:
                ok = False
            print(f"{name}: scalar {scalar / 1e6:.2f}M/s, "
                  f"batched {batched / 1e6:.2f}M/s -> {speedup:.2f}x "
                  f"(threshold {args.min_speedup:.2f}) [{verdict}]")
        else:
            print(f"{name}: scalar {scalar / 1e6:.2f}M/s, "
                  f"batched {batched / 1e6:.2f}M/s -> {speedup:.2f}x "
                  f"[informational]")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
