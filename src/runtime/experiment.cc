// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/experiment.h"

#include "src/shed/baselines.h"
#include "src/shed/hybrid.h"

namespace cepshed {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNone: return "None";
    case StrategyKind::kRI: return "RI";
    case StrategyKind::kSI: return "SI";
    case StrategyKind::kRS: return "RS";
    case StrategyKind::kSS: return "SS";
    case StrategyKind::kHybrid: return "Hybrid";
    case StrategyKind::kHyI: return "HyI";
    case StrategyKind::kHyS: return "HyS";
    case StrategyKind::kPI: return "PI";
  }
  return "?";
}

ExperimentHarness::ExperimentHarness(const Schema* schema, Query query,
                                     HarnessOptions options)
    : schema_(schema),
      query_(std::move(query)),
      options_(options),
      train_(schema),
      test_(schema) {}

Status ExperimentHarness::Prepare(const EventStream& train, const EventStream& test) {
  CEPSHED_ASSIGN_OR_RETURN(nfa_, Nfa::Compile(query_, schema_));
  train_ = train;
  test_ = test;

  CEPSHED_ASSIGN_OR_RETURN(
      offline_, EstimateOffline(nfa_, train_, options_.cost_model.num_time_slices,
                                options_.cost_model.use_resource_cost, options_.engine));
  model_ = std::make_unique<CostModel>(nfa_, options_.cost_model);
  Rng rng(options_.seed);
  CEPSHED_RETURN_NOT_OK(model_->Train(offline_, &rng));
  utility_samples_ = ComputeTrainingUtilities(*model_, train_);

  positional_ = std::make_unique<PositionalUtility>(
      static_cast<int>(schema_->num_event_types()), /*buckets=*/8, query_.window);
  CEPSHED_RETURN_NOT_OK(positional_->Train(nfa_, train_));

  prepared_ = true;
  return RefreshTruth();
}

Status ExperimentHarness::RefreshTruth() {
  if (!prepared_) return Status::Internal("Prepare must be called first");
  Engine engine(nfa_, options_.engine);
  NoShedder none;
  ShedRunner runner(&engine, &none, options_.latency);
  truth_run_ = runner.Run(test_);
  truth_ = GroundTruth(truth_run_.matches);
  return Status::OK();
}

double ExperimentHarness::BaselineLatency(LatencyStat stat) const {
  switch (stat) {
    case LatencyStat::kAverage: return truth_run_.avg_latency;
    case LatencyStat::kP95: return truth_run_.p95_latency;
    case LatencyStat::kP99: return truth_run_.p99_latency;
  }
  return truth_run_.avg_latency;
}

ExperimentResult ExperimentHarness::RunWith(Shedder* shedder, CostModel* model,
                                            size_t pm_sample_stride) {
  Engine engine(nfa_, options_.engine);
  if (model != nullptr) {
    engine.set_classifier(
        [model](const PartialMatch& pm) { return model->Classify(pm); });
    engine.set_pm_created_hook(
        [model](const PartialMatch& pm, const PartialMatch* parent) {
          model->OnPmCreated(pm, parent, pm.last_ts);
        });
    engine.set_match_hook([model](const Match& m, const PartialMatch* parent) {
      model->OnMatch(m, parent, m.detected_at);
    });
  }
  ShedRunner runner(&engine, shedder, options_.latency);
  if (options_.metrics != nullptr) {
    options_.metrics->EnsureShards(1);
    runner.set_obs(options_.metrics->shard(0));
  }
  ExperimentResult result;
  result.name = shedder->Name();
  result.raw = runner.Run(test_, pm_sample_stride);
  result.quality = ComputeQuality(result.raw.matches, truth_);
  result.throughput_eps =
      result.raw.wall_seconds > 0.0
          ? static_cast<double>(result.raw.total_events) / result.raw.wall_seconds
          : 0.0;
  result.shed_event_ratio =
      result.raw.total_events > 0
          ? static_cast<double>(result.raw.dropped_events) /
                static_cast<double>(result.raw.total_events)
          : 0.0;
  result.shed_pm_ratio =
      result.raw.pms_created > 0
          ? static_cast<double>(result.raw.shed_pms) /
                static_cast<double>(result.raw.pms_created)
          : 0.0;
  result.avg_latency = result.raw.avg_latency;
  result.bound_violation_ratio =
      result.raw.bound_checked > 0
          ? static_cast<double>(result.raw.bound_violations) /
                static_cast<double>(result.raw.bound_checked)
          : 0.0;
  return result;
}

ExperimentResult ExperimentHarness::RunBound(StrategyKind kind, double bound_fraction,
                                             LatencyStat stat,
                                             size_t pm_sample_stride) {
  LatencyMonitor::Options lat = options_.latency;
  lat.stat = stat;
  HarnessOptions saved = options_;
  options_.latency = lat;
  const double theta = bound_fraction * BaselineLatency(stat);
  const uint64_t seed = options_.seed * 1000003 + static_cast<uint64_t>(kind) * 101 +
                        static_cast<uint64_t>(bound_fraction * 1000);

  ExperimentResult result;
  switch (kind) {
    case StrategyKind::kNone: {
      NoShedder shedder;
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kRI: {
      RandomInputShedder shedder(theta, options_.baseline_trigger_delay, seed);
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kSI: {
      SelectivityInputShedder shedder(offline_, theta, options_.baseline_trigger_delay, seed);
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kRS: {
      RandomStateShedder shedder(LatencyBoundMode{theta, options_.baseline_trigger_delay}, seed);
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kSS: {
      SelectivityStateShedder shedder(offline_, LatencyBoundMode{theta, options_.baseline_trigger_delay}, seed);
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kPI: {
      PositionalInputShedder shedder(positional_.get(), theta,
                                     options_.baseline_trigger_delay, seed);
      result = RunWith(&shedder, nullptr, pm_sample_stride);
      break;
    }
    case StrategyKind::kHybrid:
    case StrategyKind::kHyI:
    case StrategyKind::kHyS: {
      CostModel model = *model_;  // fresh copy: online adaptation is per-run
      HybridOptions hopts;
      hopts.theta = theta;
      hopts.trigger_delay = options_.trigger_delay;
      hopts.enable_input = kind != StrategyKind::kHyS;
      hopts.enable_state = kind != StrategyKind::kHyI;
      hopts.solver = options_.solver;
      hopts.utility_samples = utility_samples_;
      HybridShedder shedder(&model, hopts);
      result = RunWith(&shedder, &model, pm_sample_stride);
      break;
    }
  }
  options_ = saved;
  return result;
}

ExperimentResult ExperimentHarness::RunFixed(StrategyKind kind, double ratio,
                                             size_t pm_sample_stride) {
  const uint64_t seed = options_.seed * 7919 + static_cast<uint64_t>(kind) * 31 +
                        static_cast<uint64_t>(ratio * 1000);
  switch (kind) {
    case StrategyKind::kNone: {
      NoShedder shedder;
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kRI: {
      RandomInputShedder shedder(ratio, seed);
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kSI: {
      SelectivityInputShedder shedder(offline_, ratio, seed);
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kRS: {
      RandomStateShedder shedder(FixedRatioMode{ratio, options_.state_shed_period}, seed);
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kSS: {
      SelectivityStateShedder shedder(offline_, FixedRatioMode{ratio, options_.state_shed_period}, seed);
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kPI: {
      PositionalInputShedder shedder(positional_.get(), ratio, seed);
      return RunWith(&shedder, nullptr, pm_sample_stride);
    }
    case StrategyKind::kHyI: {
      CostModel model = *model_;
      const auto [thr, tie] = ComputeUtilityThreshold(model, train_, ratio);
      HybridFixedInputShedder shedder(&model, thr, tie, seed);
      return RunWith(&shedder, &model, pm_sample_stride);
    }
    case StrategyKind::kHyS: {
      CostModel model = *model_;
      HybridFixedStateShedder shedder(&model, ratio, options_.state_shed_period, seed);
      return RunWith(&shedder, &model, pm_sample_stride);
    }
    case StrategyKind::kHybrid: {
      // Fixed-ratio hybrid: split the ratio across input and state.
      CostModel model = *model_;
      const auto [thr, tie] = ComputeUtilityThreshold(model, train_, ratio * 0.5);
      HybridFixedInputShedder input(&model, thr, tie, seed);
      // Run input filter and periodic state shedding together via a small
      // composite.
      class Composite : public Shedder {
       public:
        Composite(HybridFixedInputShedder* in, HybridFixedStateShedder* st)
            : in_(in), st_(st) {}
        std::string Name() const override { return "Hybrid"; }
        void Bind(Engine* engine) override {
          Shedder::Bind(engine);
          in_->Bind(engine);
          st_->Bind(engine);
        }
        bool FilterEvent(const Event& e) override { return in_->FilterEvent(e); }
        void AfterEvent(Timestamp now, double mu) override {
          st_->AfterEvent(now, mu);
        }
       private:
        HybridFixedInputShedder* in_;
        HybridFixedStateShedder* st_;
      };
      HybridFixedStateShedder state(&model, ratio * 0.5, options_.state_shed_period,
                                    seed + 1);
      Composite composite(&input, &state);
      ExperimentResult result = RunWith(&composite, &model, pm_sample_stride);
      // Collect drop/shed counters from the parts.
      result.raw.dropped_events = input.events_dropped();
      result.raw.shed_pms = state.pms_shed();
      return result;
    }
  }
  NoShedder shedder;
  return RunWith(&shedder, nullptr, pm_sample_stride);
}

}  // namespace cepshed
