// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// CSV correctness suite: the three round-trip bugfix regressions (RFC-4180
// quoting, CRLF acceptance, strict from_chars numerics), a byte-identical
// write→read→write property test, and the mmap-reader-vs-istream-reader
// differential over the generator workloads. Each regression test encodes
// an input the pre-fix reader mishandled (split quoted cells, '\r' leaking
// into the last cell, stoll/stod accepting padded or signed spellings).

#include "src/workload/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/workload/citibike.h"
#include "src/workload/csv_mmap.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"

namespace cepshed {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// int ID, string NAME, double X — one attribute per value family.
Schema MakeMixedSchema() {
  Schema s;
  (void)s.AddEventType("A");
  (void)s.AddEventType("B");
  (void)s.AddAttribute("ID", ValueType::kInt);
  (void)s.AddAttribute("NAME", ValueType::kString);
  (void)s.AddAttribute("X", ValueType::kDouble);
  return s;
}

std::string WriteToString(const EventStream& stream) {
  std::ostringstream os;
  const Status st = WriteCsv(stream, &os);
  EXPECT_TRUE(st.ok()) << st.message();
  return os.str();
}

Result<EventStream> ReadFromString(const Schema& schema, const std::string& text,
                                   const CsvReadOptions& options = {},
                                   CsvReadStats* stats = nullptr) {
  std::istringstream is(text);
  return ReadCsv(schema, &is, options, stats);
}

void ExpectStreamsEqual(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.begin();
  for (const EventPtr& ea : a) {
    const EventPtr& eb = *ib++;
    EXPECT_EQ(ea->type(), eb->type());
    EXPECT_EQ(ea->timestamp(), eb->timestamp());
    EXPECT_EQ(ea->seq(), eb->seq());
    ASSERT_EQ(ea->num_attrs(), eb->num_attrs());
    for (size_t i = 0; i < ea->num_attrs(); ++i) {
      const Value& va = ea->attr(static_cast<int>(i));
      const Value& vb = eb->attr(static_cast<int>(i));
      EXPECT_EQ(va.type(), vb.type());
      if (!va.is_null() && va.type() == vb.type()) EXPECT_TRUE(va.Equals(vb));
    }
  }
}

// --- Regression 1: RFC-4180 quoting ---------------------------------------
// Before the fix, WriteCsv emitted string payloads verbatim, so a value
// containing a comma split into two cells on re-read (arity error) and a
// value containing a quote corrupted its neighbors.

TEST(CsvQuotingTest, CommaAndQuoteValuesRoundTrip) {
  const Schema schema = MakeMixedSchema();
  EventStream stream(&schema);
  ASSERT_TRUE(stream.Emit(0, 10, {Value(1), Value("plain"), Value(1.5)}).ok());
  ASSERT_TRUE(stream.Emit(1, 20, {Value(2), Value("a,b"), Value(2.5)}).ok());
  ASSERT_TRUE(stream.Emit(0, 30, {Value(3), Value("say \"hi\""), Value()}).ok());
  ASSERT_TRUE(stream.Emit(1, 40, {Value(4), Value("\""), Value(0.25)}).ok());
  ASSERT_TRUE(stream.Emit(0, 50, {Value(5), Value(",\",\""), Value(4.0)}).ok());

  const std::string text = WriteToString(stream);
  auto back = ReadFromString(schema, text);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ExpectStreamsEqual(stream, *back);
  // Quoted cells survive a second trip byte for byte.
  EXPECT_EQ(WriteToString(*back), text);
}

TEST(CsvQuotingTest, QuotedCellsParseZeroCopyAndEscaped) {
  const Schema schema = MakeMixedSchema();
  // Hand-authored file: quoted plain cell, escaped-quote cell, quoted
  // numeric cell (quotes are a cell-level transport, independent of type).
  const std::string text =
      "type,timestamp,ID,NAME,X\n"
      "A,1,\"7\",\"x,y\",1.5\n"
      "B,2,8,\"he said \"\"go\"\"\",\n";
  auto back = ReadFromString(schema, text);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->size(), 2u);
  const EventPtr& e0 = *back->begin();
  EXPECT_EQ(e0->attr(0).AsInt(), 7);
  EXPECT_EQ(e0->attr(1).AsString(), "x,y");
  const EventPtr& e1 = *(back->begin() + 1);
  EXPECT_EQ(e1->attr(1).AsString(), "he said \"go\"");
  EXPECT_TRUE(e1->attr(2).is_null());
}

TEST(CsvQuotingTest, UnterminatedQuoteIsParseError) {
  const Schema schema = MakeMixedSchema();
  const std::string text =
      "type,timestamp,ID,NAME,X\n"
      "A,1,7,\"never closed,1.5\n";
  EXPECT_FALSE(ReadFromString(schema, text).ok());
  // Lenient mode skips the row instead.
  CsvReadStats stats;
  CsvReadOptions lenient;
  lenient.lenient = true;
  auto back = ReadFromString(schema, text, lenient, &stats);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(stats.malformed_rows, 1u);
}

TEST(CsvQuotingTest, TextAfterClosingQuoteIsMalformed) {
  const Schema schema = MakeMixedSchema();
  const std::string text =
      "type,timestamp,ID,NAME,X\n"
      "A,1,7,\"ok\"trailing,1.5\n";
  EXPECT_FALSE(ReadFromString(schema, text).ok());
}

// --- Regression 2: CRLF line endings --------------------------------------
// Before the fix, the '\r' of a CRLF-authored file survived std::getline
// and leaked into the last cell: the header failed to validate, and data
// rows carried "1.5\r" into the numeric parser.

TEST(CsvCrlfTest, CrlfFileParsesIdenticallyToLf) {
  const Schema schema = MakeMixedSchema();
  const std::string lf =
      "type,timestamp,ID,NAME,X\n"
      "A,1,7,seven,1.5\n"
      "B,2,8,,\n";
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  auto from_lf = ReadFromString(schema, lf);
  ASSERT_TRUE(from_lf.ok()) << from_lf.status().message();
  auto from_crlf = ReadFromString(schema, crlf);
  ASSERT_TRUE(from_crlf.ok()) << from_crlf.status().message();
  ExpectStreamsEqual(*from_lf, *from_crlf);
  ASSERT_EQ(from_crlf->size(), 2u);
  EXPECT_EQ((*from_crlf->begin())->attr(2).AsDouble(), 1.5);

  // The mmap reader accepts the same CRLF bytes.
  const std::string path = TempPath("crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << crlf;
  }
  auto mapped = ReadCsvMappedFile(schema, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  ExpectStreamsEqual(*from_lf, *mapped);
  std::remove(path.c_str());
}

// --- Regression 3: strict numerics ----------------------------------------
// Before the fix, numeric cells went through std::stoll/std::stod, which
// skip leading whitespace, accept a leading '+', ignore trailing garbage,
// and parse hex floats — so " 12", "12 ", "+3", and "0x1p3" all slipped
// through and produced locale- and spelling-dependent streams.

TEST(CsvStrictNumericTest, PaddedAndSignedSpellingsAreRejected) {
  const Schema schema = MakeMixedSchema();
  const std::string header = "type,timestamp,ID,NAME,X\n";
  const char* bad_rows[] = {
      "A,1, 12,n,1.5\n",    // leading space in int cell
      "A,1,12 ,n,1.5\n",    // trailing space in int cell
      "A,1,+3,n,1.5\n",     // leading '+' in int cell
      "A,1,0x1A,n,1.5\n",   // hex int
      "A,1,3,n,+1.5\n",     // leading '+' in double cell
      "A,1,3,n, 1.5\n",     // leading space in double cell
      "A,1,3,n,0x1p3\n",    // hex float
      "A,1,3,n,1.5e\n",     // dangling exponent
      "A, 1,3,n,1.5\n",     // padded timestamp
  };
  for (const char* row : bad_rows) {
    SCOPED_TRACE(row);
    EXPECT_FALSE(ReadFromString(schema, header + row).ok());
    CsvReadStats stats;
    CsvReadOptions lenient;
    lenient.lenient = true;
    auto back = ReadFromString(schema, header + row, lenient, &stats);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), 0u);
    EXPECT_EQ(stats.malformed_rows, 1u);
  }
  // The strict spellings those paddings decay to still parse.
  auto ok = ReadFromString(schema,
                           header + "A,1,12,n,1.5\nB,2,-3,n,-0.5\nA,3,3,n,1.5e2\n");
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_EQ(ok->size(), 3u);
}

TEST(CsvHeaderTest, MismatchedHeaderIsHardErrorEvenLenient) {
  const Schema schema = MakeMixedSchema();
  CsvReadOptions lenient;
  lenient.lenient = true;
  EXPECT_FALSE(
      ReadFromString(schema, "type,timestamp,ID,WRONG,X\nA,1,1,n,1.5\n", lenient)
          .ok());
  EXPECT_FALSE(ReadFromString(schema, "", lenient).ok());
}

// --- Property: write→read→write is byte-identical --------------------------
// Doubles are drawn from a dyadic grid with few significant digits so the
// default ostream formatting is lossless; strings are drawn from a pool of
// quoting-hostile shapes. An empty string writes as an empty cell and reads
// back as null — which again writes as an empty cell, so byte equality of
// the second write still holds.

TEST(CsvRoundTripProperty, RandomStreamsSurviveByteIdentical) {
  const Schema schema = MakeMixedSchema();
  const char* name_pool[] = {"plain", "", "a,b", "\"", "q\"uote", ",,",
                             " spaced ", "a\"\"b", "x,\"y\",z", "-12"};
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 40; ++iter) {
    EventStream stream(&schema);
    Timestamp ts = 0;
    const int n = 1 + static_cast<int>(rng() % 120);
    for (int i = 0; i < n; ++i) {
      ts += static_cast<Timestamp>(rng() % 5);
      std::vector<Value> attrs(3);
      if (rng() % 4 != 0) {
        attrs[0] = Value(static_cast<int64_t>(rng() % 2001) - 1000);
      }
      if (rng() % 4 != 0) {
        attrs[1] = Value(std::string(name_pool[rng() % 10]));
      }
      if (rng() % 4 != 0) {
        // m / 8 with |m| < 1000: at most six significant digits.
        attrs[2] = Value(static_cast<double>(static_cast<int64_t>(rng() % 1999) -
                                             999) /
                         8.0);
      }
      ASSERT_TRUE(stream.Emit(static_cast<int>(rng() % 2), ts, std::move(attrs))
                      .ok());
    }
    const std::string first = WriteToString(stream);
    for (const bool lenient : {false, true}) {
      CsvReadOptions options;
      options.lenient = lenient;
      CsvReadStats stats;
      auto back = ReadFromString(schema, first, options, &stats);
      ASSERT_TRUE(back.ok()) << back.status().message();
      ASSERT_EQ(back->size(), stream.size());
      EXPECT_EQ(stats.malformed_rows, 0u);
      EXPECT_EQ(WriteToString(*back), first);
    }
  }
}

// --- Differential: mmap reader == istream reader ---------------------------

void ExpectMmapMatchesStream(const Schema& schema, const EventStream& stream,
                             const std::string& tag) {
  const std::string path = TempPath("mmap_diff_" + tag + ".csv");
  ASSERT_TRUE(WriteCsvFile(stream, path).ok());
  CsvReadStats stream_stats;
  auto via_stream = ReadCsvFile(schema, path, {}, &stream_stats);
  ASSERT_TRUE(via_stream.ok()) << via_stream.status().message();
  CsvReadStats mmap_stats;
  auto via_mmap = ReadCsvMappedFile(schema, path, {}, &mmap_stats);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().message();
  EXPECT_EQ(stream_stats.rows_read, mmap_stats.rows_read);
  EXPECT_EQ(stream_stats.malformed_rows, mmap_stats.malformed_rows);
  // Byte-identical re-serialization is the strongest equality we can state
  // without a stream operator==: it covers types, timestamps, and every
  // attribute value.
  EXPECT_EQ(WriteToString(*via_stream), WriteToString(*via_mmap));
  ExpectStreamsEqual(*via_stream, *via_mmap);
  std::remove(path.c_str());
}

TEST(CsvMmapDifferentialTest, Ds1) {
  const Schema schema = MakeDs1Schema();
  Ds1Options options;
  options.num_events = 4000;
  ExpectMmapMatchesStream(schema, GenerateDs1(schema, options), "ds1");
}

TEST(CsvMmapDifferentialTest, Ds2) {
  const Schema schema = MakeDs2Schema();
  Ds2Options options;
  options.num_events = 4000;
  ExpectMmapMatchesStream(schema, GenerateDs2(schema, options), "ds2");
}

TEST(CsvMmapDifferentialTest, Citibike) {
  const Schema schema = MakeCitibikeSchema();
  CitibikeOptions options;
  options.num_events = 3000;
  ExpectMmapMatchesStream(schema, GenerateCitibike(schema, options), "citibike");
}

TEST(CsvMmapDifferentialTest, LenientSkipCountsMatch) {
  const Schema schema = MakeMixedSchema();
  const std::string path = TempPath("mmap_lenient.csv");
  {
    std::ofstream out(path);
    out << "type,timestamp,ID,NAME,X\n"
        << "A,1,7,good,1.5\n"
        << "A,2,+8,padded int,1.5\n"   // malformed: '+'
        << "ZZZ,3,9,unknown type,\n"   // malformed: type
        << "B,0,9,time travel,\n"      // malformed: ts regression (0 < 1)
        << "B,4,10,\"tail\",0.25\n";
  }
  CsvReadOptions lenient;
  lenient.lenient = true;
  CsvReadStats a, b;
  auto via_stream = ReadCsvFile(schema, path, lenient, &a);
  ASSERT_TRUE(via_stream.ok()) << via_stream.status().message();
  auto via_mmap = ReadCsvMappedFile(schema, path, lenient, &b);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().message();
  EXPECT_EQ(via_stream->size(), 2u);
  EXPECT_EQ(a.rows_read, 5u);
  EXPECT_EQ(a.malformed_rows, 3u);
  EXPECT_EQ(b.rows_read, a.rows_read);
  EXPECT_EQ(b.malformed_rows, a.malformed_rows);
  ExpectStreamsEqual(*via_stream, *via_mmap);
  std::remove(path.c_str());
}

TEST(CsvMmapDifferentialTest, BatchBoundariesDoNotChangeTheStream) {
  const Schema schema = MakeDs1Schema();
  Ds1Options options;
  options.num_events = 500;
  const EventStream stream = GenerateDs1(schema, options);
  const std::string path = TempPath("mmap_batches.csv");
  ASSERT_TRUE(WriteCsvFile(stream, path).ok());

  auto whole = ReadCsvMappedFile(schema, path);
  ASSERT_TRUE(whole.ok());
  for (const size_t batch : {size_t{1}, size_t{3}, size_t{64}, size_t{10000}}) {
    SCOPED_TRACE(batch);
    auto reader = MappedCsvReader::Open(schema, path);
    ASSERT_TRUE(reader.ok()) << reader.status().message();
    EventStream rebuilt(&schema);
    std::vector<EventPtr> out;
    for (;;) {
      out.clear();
      auto n = reader->NextBatch(batch, &out);
      ASSERT_TRUE(n.ok()) << n.status().message();
      if (*n == 0) break;
      EXPECT_LE(*n, batch);
      for (EventPtr& e : out) ASSERT_TRUE(rebuilt.Append(std::move(e)).ok());
    }
    EXPECT_TRUE(reader->done());
    ExpectStreamsEqual(*whole, rebuilt);
  }
  std::remove(path.c_str());
}

TEST(CsvMmapDifferentialTest, MissingAndEmptyFiles) {
  const Schema schema = MakeMixedSchema();
  EXPECT_FALSE(ReadCsvMappedFile(schema, TempPath("does_not_exist.csv")).ok());
  const std::string path = TempPath("empty.csv");
  {
    std::ofstream out(path);
  }
  EXPECT_FALSE(ReadCsvMappedFile(schema, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cepshed
