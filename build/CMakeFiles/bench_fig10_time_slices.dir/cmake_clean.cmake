file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_time_slices.dir/bench/bench_fig10_time_slices.cpp.o"
  "CMakeFiles/bench_fig10_time_slices.dir/bench/bench_fig10_time_slices.cpp.o.d"
  "bench/bench_fig10_time_slices"
  "bench/bench_fig10_time_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_time_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
