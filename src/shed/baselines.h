// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The baseline shedding strategies the paper compares against (§VI-A):
//   RI - random input shedding (as in Kafka/Heron),
//   SI - selectivity-based input shedding (per-type utility),
//   RS - random state shedding,
//   SS - selectivity-based state shedding (per-state completion
//        probability, following best-effort pattern matching [29]).
// Every strategy supports two operation modes: latency-bound driven
// (trigger when mu > theta) and fixed shedding ratio (§VI-C).

#ifndef CEPSHED_SHED_BASELINES_H_
#define CEPSHED_SHED_BASELINES_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/shedder.h"

namespace cepshed {

/// \brief Bang-bang drop-rate controller shared by the input-based
/// latency-bound strategies: raise the drop rate on each trigger
/// proportionally to the violation, switch off once the bound holds.
class DropRateController {
 public:
  DropRateController(double theta, uint64_t delay_events)
      : trigger_(theta, delay_events) {}

  /// Updates with the current latency; returns the target drop fraction.
  double Update(double mu) {
    if (mu <= trigger_.theta()) {
      rate_ = 0.0;
      return rate_;
    }
    const double v = trigger_.Check(mu);
    if (v > 0.0) {
      rate_ = std::min(0.98, rate_ + v * (1.0 - rate_));
    }
    return rate_;
  }

  double rate() const { return rate_; }
  double theta() const { return trigger_.theta(); }
  void Reset() {
    rate_ = 0.0;
    trigger_.Reset();
  }

 private:
  OverloadTrigger trigger_;
  double rate_ = 0.0;
};

/// \brief RI: drops each input event with the current target probability.
class RandomInputShedder : public Shedder {
 public:
  /// Latency-bound mode.
  RandomInputShedder(double theta, uint64_t trigger_delay, uint64_t seed);
  /// Fixed-ratio mode: drop each event with probability `fraction`.
  RandomInputShedder(double fraction, uint64_t seed);

  std::string Name() const override { return "RI"; }
  double theta() const override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  std::optional<DropRateController> controller_;
  double rate_ = 0.0;
  double fixed_fraction_ = -1.0;
  /// Smoothed latency of the last AfterEvent (audit context for drops
  /// decided inside FilterEvent, which does not see mu).
  double last_mu_ = 0.0;
  Rng rng_;
};

/// \brief SI: drops events of the least useful types first, covering the
/// target drop fraction from the per-type input shares.
class SelectivityInputShedder : public Shedder {
 public:
  /// Latency-bound mode.
  SelectivityInputShedder(const OfflineStats& stats, double theta,
                          uint64_t trigger_delay, uint64_t seed);
  /// Fixed-ratio mode.
  SelectivityInputShedder(const OfflineStats& stats, double fraction, uint64_t seed);

  std::string Name() const override { return "SI"; }
  double theta() const override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  void RebuildPlan(double fraction);

  std::vector<double> type_utility_;
  std::vector<double> type_share_;
  std::optional<DropRateController> controller_;
  double fixed_fraction_ = -1.0;
  double planned_fraction_ = -1.0;
  /// Smoothed latency of the last AfterEvent (audit context for drops).
  double last_mu_ = 0.0;
  /// Per type: probability of dropping an event of that type.
  std::vector<double> drop_prob_;
  Rng rng_;
};

/// \brief Constructor tag for latency-bound operation.
struct LatencyBoundMode {
  double theta = 0.0;
  uint64_t trigger_delay = 200;
};

/// \brief Constructor tag for fixed-ratio operation.
struct FixedRatioMode {
  double fraction = 0.0;
  uint64_t period = 500;
};

/// \brief RS: sheds a violation-sized random fraction of the live partial
/// matches (and witnesses) whenever the trigger fires.
class RandomStateShedder : public Shedder {
 public:
  /// Latency-bound mode.
  RandomStateShedder(LatencyBoundMode mode, uint64_t seed);
  /// Fixed-ratio mode: every `period` events shed `fraction` of the state.
  RandomStateShedder(FixedRatioMode mode, uint64_t seed);

  std::string Name() const override { return "RS"; }
  double theta() const override;
  bool FilterEvent(const Event&) override { return false; }
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  void ShedFraction(double fraction);

  std::optional<OverloadTrigger> trigger_;
  double fixed_fraction_ = -1.0;
  uint64_t period_ = 0;
  uint64_t events_seen_ = 0;
  Rng rng_;
};

/// \brief SS: sheds partial matches in increasing order of their state's
/// offline completion probability (witnesses count as zero-utility).
class SelectivityStateShedder : public Shedder {
 public:
  /// Latency-bound mode.
  SelectivityStateShedder(const OfflineStats& stats, LatencyBoundMode mode,
                          uint64_t seed);
  /// Fixed-ratio mode.
  SelectivityStateShedder(const OfflineStats& stats, FixedRatioMode mode,
                          uint64_t seed);

  std::string Name() const override { return "SS"; }
  double theta() const override;
  bool FilterEvent(const Event&) override { return false; }
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  void ShedFraction(double fraction);

  std::vector<double> state_completion_;
  std::optional<OverloadTrigger> trigger_;
  double fixed_fraction_ = -1.0;
  uint64_t period_ = 0;
  uint64_t events_seen_ = 0;
  Rng rng_;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_BASELINES_H_
