// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 15 of the paper: the bike-sharing case study. The 'hot paths'
// query of Listing 1 (paths of at least five stations within one hour)
// over the synthetic citibike stream, under bounds on the 99th-percentile
// latency. The selectivity-based baselines exploit the user type.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  CitibikeOptions gen;
  gen.num_events = 25000;
  auto exp = PrepareCitibike(*queries::CitibikeHotPaths(5, 8), gen);

  std::printf("# no-shedding p99 latency = %.1f cost units, truth = %zu matches\n",
              exp.harness->BaselineLatency(LatencyStat::kP99),
              exp.harness->truth().size());

  Header("Fig. 15a+15b", "citibike hot paths, bounds on the 99th-pct latency",
         kResultColumns);
  for (double bound : {0.8, 0.6, 0.4, 0.2}) {
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, bound, LatencyStat::kP99);
      PrintResultRow(std::to_string(bound).substr(0, 3), r);
    }
  }
  return 0;
}
