// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// An input shedder in the spirit of hSPICE (Slo, Bhowmik & Rothermel,
// DEBS 2020), which the paper discusses as related work (§VII): the
// utility of an arriving event is assessed per (event type, NFA state) —
// the probability that a partial match at that state whose last bound
// event had that type eventually completes. Sits between type-level SI
// (which ignores automaton progress) and the attribute-level cost model
// (which classifies on predicate attributes): state-aware but still
// cheap, one table lookup per accepting state.
//
// Two things go beyond the static table. First, the per-event utility is
// feasibility-gated at runtime: an event's utility at state s counts only
// while a partial match actually sits at s-1 (or at s for a Kleene
// self-loop), so events that could not bind to anything right now score
// zero regardless of their historic value. Second, the table adapts
// online: creation/match hooks feed per-(type, state) completion counts
// through a pair of count-min sketches, periodically folded into the
// table the same way the cost model folds its class estimates.

#ifndef CEPSHED_SHED_HSPICE_H_
#define CEPSHED_SHED_HSPICE_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/cep/nfa.h"
#include "src/common/rng.h"
#include "src/shed/baselines.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/shedder.h"
#include "src/sketch/count_min.h"

namespace cepshed {

/// \brief Per-(event type, NFA state) completion-probability table learned
/// from offline statistics, plus the weighted utility distribution used
/// for quantile thresholds.
class HspiceTable {
 public:
  HspiceTable() = default;

  /// Learns the table from offline statistics (which must have been
  /// estimated for `nfa`): utility(t, s) = fraction of partial matches
  /// created at state s by an event of type t that eventually derived at
  /// least one complete match. Unobserved (t, s) cells fall back to the
  /// SI-style type utility.
  Status Train(std::shared_ptr<const Nfa> nfa, const OfflineStats& stats);

  bool trained() const { return !utility_.empty(); }
  int num_types() const { return num_types_; }
  int num_states() const { return num_states_; }
  const std::shared_ptr<const Nfa>& nfa() const { return nfa_; }

  /// Completion probability of a partial match at `state` whose last
  /// event has `type`. Out-of-range keys score 0.
  double Utility(int type, int state) const;
  void SetUtility(int type, int state, double u);

  /// Static (feasibility-blind) utility of an event type: the best
  /// utility over the states that accept it.
  double StaticEventUtility(int type) const;

  /// The `fraction` quantile of the static utility distribution weighted
  /// by each type's stream share — dropping everything at or below the
  /// returned cutoff removes roughly that fraction of the input.
  /// Negative when fraction <= 0 (drop nothing).
  double ThresholdFor(double fraction) const;

  /// Re-sorts the weighted utility distribution; call after SetUtility.
  void RebuildThresholds();

 private:
  size_t Index(int type, int state) const {
    return static_cast<size_t>(type) * static_cast<size_t>(num_states_) +
           static_cast<size_t>(state);
  }

  std::shared_ptr<const Nfa> nfa_;
  int num_types_ = 0;
  int num_states_ = 0;
  std::vector<double> utility_;  // type-major [type][state]
  std::vector<double> type_share_;
  /// (static utility, stream share) ascending by utility.
  std::vector<std::pair<double, double>> sorted_;
};

/// \brief hSPICE: input-side shedding (rho_I) by per-(type, state) utility.
///
/// Latency-bound mode adapts the drop rate like the other input baselines;
/// fixed-ratio mode drops a calibrated fraction. Owns a mutable copy of
/// the table so online adaptation stays per-run state.
class HspiceShedder : public Shedder {
 public:
  /// Latency-bound mode.
  HspiceShedder(const HspiceTable& table, double theta, uint64_t trigger_delay,
                uint64_t seed);
  /// Fixed-ratio mode.
  HspiceShedder(const HspiceTable& table, double fraction, uint64_t seed);

  std::string Name() const override { return "hSPICE"; }
  double theta() const override;
  void Bind(Engine* engine) override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

  /// Feasibility-gated utility of an event type right now (exposed for
  /// tests).
  double RuntimeUtility(int type) const;

 private:
  /// A state can consume an event right now iff it starts a pattern, a
  /// match waits one state behind, or the state is a Kleene component
  /// with an open instance.
  bool Feasible(int state) const;
  void RefreshOccupancy();
  void MaybeFold();

  HspiceTable table_;
  std::optional<DropRateController> controller_;
  double fixed_fraction_ = -1.0;
  double threshold_ = -1.0;
  double planned_fraction_ = 0.0;
  /// Smoothed latency of the last AfterEvent (audit context for drops).
  double last_mu_ = 0.0;
  /// Per-state bucket occupancy, refreshed every kRefreshPeriod events.
  std::vector<bool> occupied_;
  uint64_t events_seen_ = 0;
  /// Online adaptation: per-(type, state) creations and completions since
  /// the last fold.
  CountMinSketch created_inc_;
  CountMinSketch completed_inc_;
  Rng rng_;

  static constexpr uint64_t kRefreshPeriod = 64;
  static constexpr uint64_t kFoldPeriod = 4096;
  static constexpr double kFoldWeight = 0.3;
  static constexpr double kMinFoldObservations = 8.0;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_HSPICE_H_
