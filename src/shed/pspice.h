// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// A state shedder in the spirit of pSPICE (Slo, Bhowmik, Flaig &
// Rothermel, related work §VII): when overloaded, partial matches are
// killed in increasing order of their *predicted completion probability*,
// so the state that is least likely to ever produce a match goes first.
// The prediction is a per-state regression tree over the same predicate-
// attribute features the cost model classifies on — attribute-aware where
// the SS baseline is state-average-only — with the SS state-completion
// prior as fallback for states the training data could not support a tree
// for. Online per-(state, leaf) completion counts are folded into the
// predictions periodically, so a leaf whose value drifts after training
// is re-ranked.

#ifndef CEPSHED_SHED_PSPICE_H_
#define CEPSHED_SHED_PSPICE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/cep/nfa.h"
#include "src/ml/regression_tree.h"
#include "src/shed/baselines.h"
#include "src/shed/offline_estimator.h"
#include "src/shed/shedder.h"

namespace cepshed {

/// \brief Per-state completion-probability model: one regression tree per
/// NFA state over the match-classifier features, target = did the partial
/// match derive at least one complete match.
class PspiceModel {
 public:
  PspiceModel() = default;

  /// Fits the per-state trees from offline statistics estimated for `nfa`.
  /// States with too few records keep an unfitted tree and fall back to
  /// the state-completion prior.
  Status Train(std::shared_ptr<const Nfa> nfa, const OfflineStats& stats);

  bool trained() const { return !states_.empty(); }
  int num_states() const { return static_cast<int>(states_.size()); }
  const std::shared_ptr<const Nfa>& nfa() const { return nfa_; }

  /// Predicted probability that `pm` eventually completes. Blends the
  /// tree's leaf mean with any online adjustment set by SetLeafValue.
  double CompletionProbability(const PartialMatch& pm) const;

  /// Dense leaf index of `pm` under its state's tree; -1 when the state
  /// has no fitted tree. Doubles as the shedder's audit class label.
  int LeafOf(const PartialMatch& pm) const;

  /// Number of leaves of a state's tree (0 = unfitted).
  size_t NumLeaves(int state) const;

  /// Overrides the value of a (state, leaf) cell (online adaptation).
  void SetLeafValue(int state, int leaf, double p);
  /// Current value of a (state, leaf) cell (leaf mean unless overridden).
  double LeafValue(int state, int leaf) const;

 private:
  struct StateModel {
    RegressionTree tree;
    double prior = 0.0;
    /// Online overrides, one per leaf; negative = use the leaf mean.
    std::vector<double> leaf_override;
  };

  std::shared_ptr<const Nfa> nfa_;
  std::vector<StateModel> states_;
};

/// \brief pSPICE: state-side shedding (rho_S) that kills the partial
/// matches with the lowest predicted completion probability first.
///
/// Latency-bound mode sheds the violation fraction when the overload
/// trigger fires (like RS/SS); fixed-ratio mode sheds the fraction every
/// `period` events. Owns a mutable copy of the model so online
/// adaptation stays per-run state.
class PspiceShedder : public Shedder {
 public:
  /// Latency-bound mode.
  PspiceShedder(const PspiceModel& model, LatencyBoundMode mode);
  /// Fixed-ratio mode.
  PspiceShedder(const PspiceModel& model, FixedRatioMode mode);

  std::string Name() const override { return "pSPICE"; }
  double theta() const override;
  void Bind(Engine* engine) override;
  bool FilterEvent(const Event&) override { return false; }
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

  /// Kills the `fraction` share of live partial matches with the lowest
  /// predicted completion probability (witnesses go first — they cannot
  /// complete by construction). Exposed for tests.
  void ShedFraction(double fraction);

 private:
  void MaybeFold();

  PspiceModel model_;
  std::optional<OverloadTrigger> trigger_;
  double fixed_fraction_ = -1.0;
  uint64_t period_ = 500;
  uint64_t events_seen_ = 0;
  Timestamp last_now_ = 0;
  double last_mu_ = 0.0;
  /// Online adaptation: per-(state, leaf) creations/completions since the
  /// last fold, flat per state (leaf counts are small and fixed).
  std::vector<std::vector<double>> created_;
  std::vector<std::vector<double>> completed_;

  static constexpr uint64_t kFoldPeriod = 4096;
  static constexpr double kFoldWeight = 0.3;
  static constexpr double kMinFoldObservations = 8.0;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_PSPICE_H_
