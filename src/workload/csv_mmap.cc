// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/csv_mmap.h"

#include <memory>
#include <string_view>
#include <utility>

namespace cepshed {

Result<MappedCsvReader> MappedCsvReader::Open(const Schema& schema,
                                              const std::string& path,
                                              CsvReadOptions options) {
  FileMapping map;
  CEPSHED_ASSIGN_OR_RETURN(map, FileMapping::Open(path));
  MappedCsvReader reader(schema, std::move(map), options);
  std::string_view header;
  if (!reader.cursor_.NextRow(&header)) {
    return Status::InvalidArgument("CSV input is empty");
  }
  if (!reader.splitter_.Split(header, &reader.cells_)) {
    return Status::InvalidArgument("CSV header does not match the schema");
  }
  CEPSHED_RETURN_NOT_OK(ValidateCsvHeader(schema, reader.cells_));
  reader.expected_cells_ = reader.cells_.size();
  return reader;
}

Result<size_t> MappedCsvReader::NextBatch(size_t max_events,
                                          std::vector<EventPtr>* out) {
  size_t added = 0;
  std::string_view row;
  while (added < max_events) {
    if (!cursor_.NextRow(&row)) {
      done_ = true;
      break;
    }
    if (row.empty()) continue;
    ++stats_.rows_read;
    int type = -1;
    Timestamp ts = 0;
    std::vector<Value> attrs;
    Status st = Status::OK();
    if (!splitter_.Split(row, &cells_)) {
      st = Status::ParseError("CSV line " + std::to_string(cursor_.line_no()) +
                              ": unterminated quoted cell");
    } else {
      st = ParseCsvRow(*schema_, cells_, expected_cells_, cursor_.line_no(),
                       &type, &ts, &attrs);
    }
    // Mirror EventStream::Emit's timestamp check so lenient-mode skip
    // counts match the istream reader row for row.
    if (st.ok() && have_last_ && ts < last_ts_) {
      st = Status::InvalidArgument(
          "CSV line " + std::to_string(cursor_.line_no()) +
          ": timestamps must be non-decreasing");
    }
    if (!st.ok()) {
      if (!options_.lenient) return st;
      ++stats_.malformed_rows;
      continue;
    }
    last_ts_ = ts;
    have_last_ = true;
    out->push_back(
        std::make_shared<Event>(type, ts, next_seq_++, std::move(attrs)));
    ++added;
  }
  return added;
}

Result<EventStream> ReadCsvMappedFile(const Schema& schema,
                                      const std::string& path,
                                      const CsvReadOptions& options,
                                      CsvReadStats* stats) {
  auto opened = MappedCsvReader::Open(schema, path, options);
  if (!opened.ok()) return opened.status();
  MappedCsvReader& reader = *opened;
  EventStream stream(&schema);
  std::vector<EventPtr> batch;
  for (;;) {
    batch.clear();
    auto n = reader.NextBatch(1024, &batch);
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    for (EventPtr& e : batch) {
      CEPSHED_RETURN_NOT_OK(stream.Append(std::move(e)));
    }
  }
  if (stats != nullptr) *stats = reader.stats();
  return stream;
}

}  // namespace cepshed
