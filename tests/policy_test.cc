// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Tests of the selective event-selection policies (§III-A): semantics of
// skip-till-next-match and strict contiguity, and the monotonicity
// violation the paper names them for — under a selective policy, dropping
// an input event can CREATE a match that exhaustive evaluation of the full
// stream would not produce.

#include <gtest/gtest.h>

#include <set>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/query/parser.h"
#include "src/workload/ds1.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

using testing::MakeAbcdSchema;
using testing::MakeEvent;

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : schema_(MakeAbcdSchema()) {}

  EventPtr Ev(const std::string& type, Timestamp ts, int64_t id, int64_t v) {
    return MakeEvent(schema_, type, ts, seq_++, id, v);
  }

  std::vector<Match> Run(const Query& query, const std::vector<EventPtr>& events) {
    auto nfa = Nfa::Compile(query, &schema_);
    EXPECT_TRUE(nfa.ok()) << nfa.status();
    Engine engine(*nfa, EngineOptions{});
    std::vector<Match> out;
    for (const EventPtr& e : events) engine.Process(e, &out);
    return out;
  }

  Query MakeAb(SelectionPolicy policy) {
    Query q;
    q.elements = {
        {"a", "A", -1, false, false, 1, 1},
        {"b", "B", -1, false, false, 1, 1},
    };
    q.predicates.push_back(Expr::Compare(CmpOp::kEq,
                                         Expr::Attr("a", RefSelector::kSingle, "ID"),
                                         Expr::Attr("b", RefSelector::kSingle, "ID")));
    q.window = Millis(8);
    q.policy = policy;
    return q;
  }

  Schema schema_;
  uint64_t seq_ = 0;
};

TEST_F(PolicyTest, ParserAcceptsPolicyClause) {
  auto q = ParseQuery("PATTERN SEQ(A a, B b) POLICY next WITHIN 1ms");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->policy, SelectionPolicy::kSkipTillNextMatch);
  auto q2 = ParseQuery("PATTERN SEQ(A a, B b) POLICY strict WITHIN 1ms");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->policy, SelectionPolicy::kStrictContiguity);
  auto q3 = ParseQuery("PATTERN SEQ(A a, B b) WITHIN 1ms");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3->policy, SelectionPolicy::kSkipTillAnyMatch);
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) POLICY sideways WITHIN 1ms").ok());
}

TEST_F(PolicyTest, SkipTillNextMatchTakesFirstViableEvent) {
  // One A, two matching Bs: STAM yields 2 matches, STNM exactly 1 (the
  // first B consumes the partial match).
  std::vector<EventPtr> events = {Ev("A", 0, 1, 1), Ev("B", 1, 1, 1), Ev("B", 2, 1, 1)};
  EXPECT_EQ(Run(MakeAb(SelectionPolicy::kSkipTillAnyMatch), events).size(), 2u);
  seq_ = 0;
  events = {Ev("A", 0, 1, 1), Ev("B", 1, 1, 1), Ev("B", 2, 1, 1)};
  auto stnm = Run(MakeAb(SelectionPolicy::kSkipTillNextMatch), events);
  ASSERT_EQ(stnm.size(), 1u);
  EXPECT_EQ(stnm[0].events[1]->seq(), 1u);  // the first B
}

TEST_F(PolicyTest, SkipTillNextMatchStillSkipsIrrelevantEvents) {
  // A, then a non-matching B (different ID), then a matching B: the
  // irrelevant event is skipped, the match completes.
  std::vector<EventPtr> events = {Ev("A", 0, 1, 1), Ev("B", 1, 2, 1), Ev("B", 2, 1, 1)};
  auto matches = Run(MakeAb(SelectionPolicy::kSkipTillNextMatch), events);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].events[1]->seq(), 2u);
}

TEST_F(PolicyTest, StrictContiguityRequiresAdjacency) {
  // A directly followed by a matching B: match.
  std::vector<EventPtr> events = {Ev("A", 0, 1, 1), Ev("B", 1, 1, 1)};
  EXPECT_EQ(Run(MakeAb(SelectionPolicy::kStrictContiguity), events).size(), 1u);
  // An interleaved C kills the pattern instance.
  seq_ = 0;
  events = {Ev("A", 0, 1, 1), Ev("C", 1, 1, 1), Ev("B", 2, 1, 1)};
  EXPECT_TRUE(Run(MakeAb(SelectionPolicy::kStrictContiguity), events).empty());
}

TEST_F(PolicyTest, StrictContiguityKleeneRuns) {
  // SEQ(A+ a[], B b) strict: only stream-contiguous runs of As directly
  // followed by B.
  Query q;
  q.elements = {
      {"a", "A", -1, true, false, 1, 10},
      {"b", "B", -1, false, false, 1, 1},
  };
  q.window = Millis(8);
  q.policy = SelectionPolicy::kStrictContiguity;
  std::vector<EventPtr> events = {
      Ev("A", 0, 1, 1), Ev("A", 1, 1, 1), Ev("B", 2, 1, 1),
  };
  // Contiguous suffix runs: {a1,a2} and {a2} both end adjacent to B.
  auto matches = Run(q, events);
  EXPECT_EQ(matches.size(), 2u);

  seq_ = 0;
  events = {Ev("A", 0, 1, 1), Ev("C", 1, 1, 1), Ev("A", 2, 1, 1), Ev("B", 3, 1, 1)};
  // The C breaks the first A's run; only {a2} survives.
  auto broken = Run(q, events);
  EXPECT_EQ(broken.size(), 1u);
}

TEST_F(PolicyTest, SelectivePolicyViolatesStreamMonotonicity) {
  // The paper's §III-A counter-example: under skip-till-next-match,
  // removing an input event changes WHICH event a match takes, creating a
  // match the full stream would not produce.
  // Query: SEQ(A a, B b) WHERE a.ID=b.ID AND b.V=2 is false for the first
  // B — use value predicate on b: a match on the full stream binds b1 and
  // dies; without b1 it binds b2.
  Query q = MakeAb(SelectionPolicy::kSkipTillNextMatch);
  std::vector<EventPtr> full = {Ev("A", 0, 1, 1), Ev("B", 1, 1, 1), Ev("B", 2, 1, 2)};
  const auto full_matches = Run(q, full);
  std::set<std::string> full_keys;
  for (const auto& m : full_matches) full_keys.insert(m.Key());

  // Project away the first B (input shedding).
  std::vector<EventPtr> projected = {full[0], full[2]};
  const auto projected_matches = Run(q, projected);
  ASSERT_EQ(projected_matches.size(), 1u);
  // The projected run produced a match (a, b2) that the full run did not.
  EXPECT_EQ(full_keys.count(projected_matches[0].Key()), 0u)
      << "expected a monotonicity violation under the selective policy";
}

TEST_F(PolicyTest, ExhaustivePolicyIsMonotoneOnSameExample) {
  Query q = MakeAb(SelectionPolicy::kSkipTillAnyMatch);
  std::vector<EventPtr> full = {Ev("A", 0, 1, 1), Ev("B", 1, 1, 1), Ev("B", 2, 1, 2)};
  const auto full_matches = Run(q, full);
  std::set<std::string> full_keys;
  for (const auto& m : full_matches) full_keys.insert(m.Key());
  std::vector<EventPtr> projected = {full[0], full[2]};
  for (const auto& m : Run(q, projected)) {
    EXPECT_EQ(full_keys.count(m.Key()), 1u);
  }
}

TEST_F(PolicyTest, PolicyRoundTripsThroughToString) {
  auto q = ParseQuery("PATTERN SEQ(A+{2,5} a[], B b) POLICY strict WITHIN 1ms");
  ASSERT_TRUE(q.ok());
  const std::string text = q->ToString();
  EXPECT_NE(text.find("POLICY strict"), std::string::npos);
  EXPECT_NE(text.find("A+{2,5}"), std::string::npos);
}

}  // namespace
}  // namespace cepshed
