// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the common substrate: Status/Result, Value, Rng.

#include <gtest/gtest.h>

#include <set>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace cepshed {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    CEPSHED_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("no");
  };
  auto use = [&](bool ok) -> Result<int> {
    int v = 0;
    CEPSHED_ASSIGN_OR_RETURN(v, produce(ok));
    return v + 1;
  };
  EXPECT_EQ(*use(true), 8);
  EXPECT_EQ(use(false).status().code(), StatusCode::kInternal);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(3).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericPromotionInEquality) {
  EXPECT_TRUE(Value(2).Equals(Value(2.0)));
  EXPECT_FALSE(Value(2).Equals(Value(2.5)));
  EXPECT_TRUE(Value(2).Equals(Value(2)));
}

TEST(ValueTest, NullComparesUnequalToEverything) {
  EXPECT_FALSE(Value().Equals(Value()));
  EXPECT_FALSE(Value().Equals(Value(0)));
  EXPECT_EQ(Value().Compare(Value(1)), -2);
}

TEST(ValueTest, CompareOrdersNumbersAndStrings) {
  EXPECT_EQ(Value(1).Compare(Value(2)), -1);
  EXPECT_EQ(Value(2).Compare(Value(2)), 0);
  EXPECT_EQ(Value(3.5).Compare(Value(2)), 1);
  EXPECT_EQ(Value("a").Compare(Value("b")), -1);
  EXPECT_EQ(Value("a").Compare(Value(1)), -2);  // incomparable
}

TEST(ValueTest, EqualValuesHashEqually) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(7);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(8);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.2);
}

TEST(RngTest, PoissonMean) {
  Rng rng(9);
  for (double lambda : {0.5, 5.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(10);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(w) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(12);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace cepshed
