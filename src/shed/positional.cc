// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/positional.h"

#include <algorithm>
#include <unordered_set>

#include "src/cep/engine.h"
#include "src/shed/registry.h"

namespace cepshed {

PositionalUtility::PositionalUtility(int num_types, int buckets, Duration window)
    : num_types_(num_types),
      buckets_(buckets < 1 ? 1 : buckets),
      window_(window < 1 ? 1 : window) {
  hits_.assign(static_cast<size_t>(num_types_) * static_cast<size_t>(buckets_), 0.0);
  totals_.assign(hits_.size(), 0.0);
}

size_t PositionalUtility::Index(int type, Duration offset) const {
  Duration cyc = offset % window_;
  if (cyc < 0) cyc += window_;
  const int bucket = static_cast<int>(cyc * buckets_ / window_);
  return static_cast<size_t>(type) * static_cast<size_t>(buckets_) +
         static_cast<size_t>(std::min(bucket, buckets_ - 1));
}

Status PositionalUtility::Train(const std::shared_ptr<const Nfa>& nfa,
                                const EventStream& history) {
  Engine engine(nfa, EngineOptions{});
  std::unordered_set<uint64_t> participating;
  engine.set_match_hook([&](const Match& match, const PartialMatch*) {
    for (const EventPtr& e : match.events) participating.insert(e->seq());
  });
  std::vector<Match> sink;
  for (const EventPtr& e : history) {
    engine.Process(e, &sink);
    sink.clear();
  }
  for (const EventPtr& e : history) {
    const size_t idx = Index(e->type(), e->timestamp());
    totals_[idx] += 1.0;
    if (participating.count(e->seq()) > 0) hits_[idx] += 1.0;
  }
  sorted_utilities_.clear();
  sorted_utilities_.reserve(history.size());
  for (const EventPtr& e : history) {
    sorted_utilities_.push_back(Utility(e->type(), e->timestamp()));
  }
  std::sort(sorted_utilities_.begin(), sorted_utilities_.end());
  return Status::OK();
}

double PositionalUtility::Utility(int type, Timestamp ts) const {
  if (type < 0 || type >= num_types_) return 0.0;
  const size_t idx = Index(type, ts);
  return totals_[idx] > 0.0 ? hits_[idx] / totals_[idx] : 0.0;
}

PositionalInputShedder::PositionalInputShedder(const PositionalUtility* utility,
                                               double theta, uint64_t trigger_delay,
                                               uint64_t seed)
    : utility_(utility),
      controller_(DropRateController(theta, trigger_delay)),
      rng_(seed) {}

PositionalInputShedder::PositionalInputShedder(const PositionalUtility* utility,
                                               double fraction, uint64_t seed)
    : utility_(utility), fixed_fraction_(fraction), rng_(seed) {
  threshold_ = ThresholdFor(fraction);
  planned_fraction_ = fraction;
}

double PositionalInputShedder::theta() const {
  return controller_ ? controller_->theta() : -1.0;
}

double PositionalInputShedder::ThresholdFor(double fraction) const {
  const auto& sorted = utility_->sorted_utilities();
  if (sorted.empty() || fraction <= 0.0) return -1.0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(fraction * static_cast<double>(sorted.size())));
  return sorted[idx];
}

bool PositionalInputShedder::FilterEvent(const Event& event) {
  if (threshold_ < 0.0) return false;
  const double u = utility_->Utility(event.type(), event.timestamp());
  if (u < threshold_) {
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  if (u == threshold_ && planned_fraction_ > 0.0 &&
      rng_.Bernoulli(0.5 * planned_fraction_)) {
    // Rough tie-breaking keeps the realized rate near the target when the
    // utility distribution is coarse.
    return DropEvent(static_cast<int>(event.type()), last_mu_, event.seq(),
                     event.timestamp());
  }
  return false;
}

void PositionalInputShedder::AfterEvent(Timestamp, double mu) {
  last_mu_ = mu;
  if (!controller_) return;
  const double rate = controller_->Update(mu);
  if (rate != planned_fraction_) {
    planned_fraction_ = rate;
    threshold_ = ThresholdFor(rate);
  }
}

void PositionalInputShedder::Reset() {
  Shedder::Reset();
  last_mu_ = 0.0;
  if (controller_) {
    controller_->Reset();
    planned_fraction_ = 0.0;
    threshold_ = -1.0;
  } else {
    planned_fraction_ = fixed_fraction_;
    threshold_ = ThresholdFor(fixed_fraction_);
  }
}

// --- Registry ----------------------------------------------------------

CEPSHED_SHEDDER_LINK_TOKEN(Positional)

namespace {

const ShedderRegistrar kPiRegistrar{
    "pi", [](const ShedderConfig& config,
             const ShedderContext& ctx) -> Result<std::unique_ptr<Shedder>> {
      CEPSHED_RETURN_NOT_OK(config.ExpectKeys({"theta", "fraction", "delay", "seed"}));
      CEPSHED_ASSIGN_OR_RETURN(ResolvedMode mode, ResolveMode(config, ctx));
      if (!mode.fixed() && !mode.bound()) {
        return Status::InvalidArgument(
            "shedder \"pi\" needs a latency bound (theta=...) or a fixed "
            "ratio (fraction=...)");
      }
      if (ctx.positional == nullptr) {
        return Status::InvalidArgument(
            "shedder \"pi\" needs a trained positional-utility table "
            "(construct it through a prepared harness)");
      }
      if (mode.fixed()) {
        return std::unique_ptr<Shedder>(
            new PositionalInputShedder(ctx.positional, mode.fraction, mode.seed));
      }
      return std::unique_ptr<Shedder>(new PositionalInputShedder(
          ctx.positional, mode.theta, mode.delay, mode.seed));
    }};

}  // namespace

}  // namespace cepshed
