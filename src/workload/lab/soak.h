// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Soak harness: drives persistent per-shard engines through many cycles of
// hostile workload (src/workload/lab/hostile.h) on one continuous
// event-time axis and asserts that the state-footprint gauges introduced
// in the observability layer stay *bounded* — i.e. that nothing leaks or
// creeps when the engine runs far longer than any single test or bench.
//
// Why not just loop ShardRuntime::Run? Run constructs fresh engines per
// call, so cross-run leaks are structurally impossible there and a soak
// over it would only measure the generators. The failure mode worth
// hunting is state that survives *within* one long-lived engine: arena
// capacity that ratchets up burst after burst, a flatten cache that never
// sheds entries, partial matches pinned past their window. The runner
// therefore owns one Engine + OverloadGuard + LatencyMonitor per shard for
// its whole life, routes events with the runtime's own hash
// (ShardRuntime::ShardOfKey), and chains each cycle's ts_origin after the
// previous cycle's last timestamp so windows genuinely expire.
//
// Boundedness criterion: the first `warmup_cycles` cycles establish a
// per-gauge baseline peak (warmup lets caches fill and the arena reach its
// natural plateau); every later cycle's peak must stay within
// `slack * max(baseline, floor)`. The audit ring is additionally checked
// against its compile-time capacity. A violation does not abort the run —
// the report carries `bounded = false` plus a human-readable description,
// and the caller (tools/soak_runner, tests/soak_test) decides how loud to
// be.

#ifndef CEPSHED_WORKLOAD_LAB_SOAK_H_
#define CEPSHED_WORKLOAD_LAB_SOAK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace cepshed {
namespace lab {

struct SoakOptions {
  int num_shards = 2;
  /// Total workload cycles, including warmup.
  int cycles = 12;
  size_t events_per_cycle = 6000;
  /// "drift", "burst", "kleene", or "mixed" (rotates through all three).
  std::string workload = "mixed";
  /// Kleene limit of the Q2 query under soak.
  int kleene_reps = 3;
  std::string window = "1ms";
  /// Overload-guard latency bound in cost units (<= 0: latency signal off;
  /// memory pressure still drives the ladder).
  double guard_theta = 0.0;
  /// Per-shard partial-match memory budget. This is the lever that makes
  /// the Kleene bomb survivable — and the soak verifies it actually holds.
  size_t memory_budget_bytes = 8u << 20;
  /// Cycles that establish the baseline peaks (must be < cycles).
  int warmup_cycles = 3;
  /// Post-warmup peaks may exceed the baseline by this factor.
  double slack = 2.0;
  /// Stop issuing new cycles once this much wall time has elapsed
  /// (0 = no limit). The report flags truncation; boundedness is then
  /// judged over the cycles that did run.
  double wall_limit_seconds = 0.0;
  uint64_t seed = 42;
  /// Cycle-anchored elastic schedule: "CYCLE:LIVE;CYCLE:LIVE" (e.g.
  /// "4:4;8:2") changes the live shard count at the *start* of the named
  /// cycle, migrating partial-match ownership between the persistent
  /// engines exactly like the runtime's stop-the-world resize. Entries
  /// must not fall inside warmup (the baseline is established at
  /// num_shards). Empty = no resizes. The soak then also asserts the
  /// migration-leak invariant: once the live count has been stable for a
  /// full cycle, the retired engines' arenas must have drained back to
  /// (below) the byte floor — chain nodes lent to recipients all came
  /// home when their windows expired.
  std::string scale_schedule;
};

/// Per-cycle observations; peaks are sampled after every processed event.
struct SoakCycleStats {
  int cycle = 0;
  std::string workload;
  uint64_t events = 0;
  uint64_t matches = 0;
  uint64_t guard_drops = 0;
  /// Cumulative guard trims + emergency evictions across all shards at
  /// cycle end (monotone over the run).
  uint64_t evictions = 0;
  /// Max over shards of the per-event gauge samples within the cycle.
  size_t state_bytes_peak = 0;
  size_t arena_live_bytes_peak = 0;
  /// Capacity never shrinks, so the end-of-cycle value IS the peak.
  size_t arena_capacity_bytes_end = 0;
  size_t flat_cache_peak = 0;
  /// Largest audit-ring population over shards at cycle end.
  size_t audit_retained = 0;
  double wall_seconds = 0.0;
  /// Live shard count this cycle ran with (== num_shards without a scale
  /// schedule), whether the cycle started with a resize, and what it moved.
  int live_shards = 0;
  bool resized = false;
  uint64_t migrated_pms = 0;
  /// Live chain-node bytes still owed to retired (non-routable) engines'
  /// arenas at cycle end — the migration-leak gauge.
  size_t legacy_arena_bytes_end = 0;
};

struct SoakReport {
  std::vector<SoakCycleStats> cycles;
  bool bounded = true;
  /// Empty when bounded; else names the first offending cycle/gauge.
  std::string violation;
  /// True when wall_limit_seconds cut the run short.
  bool truncated = false;
  uint64_t total_events = 0;
  uint64_t total_matches = 0;
  double total_wall_seconds = 0.0;
};

/// \brief Owns the persistent engines and the metrics registry for one
/// soak run. The registry outlives Run() so callers can export a final
/// metrics snapshot (the nightly CI job uploads it as an artifact).
class SoakRunner {
 public:
  explicit SoakRunner(SoakOptions options);

  /// Executes the soak. Fails only on setup errors (bad workload name,
  /// query compilation); boundedness violations are reported in-band.
  Result<SoakReport> Run();

  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  SoakOptions options_;
  obs::MetricsRegistry registry_;
};

/// Renders the report (plus the options that produced it) as one JSON
/// object — the soak_runner tool's report format.
std::string RenderSoakJson(const SoakOptions& options, const SoakReport& report);

}  // namespace lab
}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_LAB_SOAK_H_
