// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Dataset DS2 of the paper (Table II): numeric payloads drawn from
// partially overlapping ranges, designed to make the resource cost of
// partial matches heterogeneous (query Q3's Euclidean-distance predicate):
//   A.x, A.y, B.x, B.y : P(0 < X <= 2) = 33%, P(2 < X <= 4) = 67%
//   B.v : 2 (33%) / 5 (67%)   C.v : 3 (33%) / 5 (67%)   D.v : 5 (33%) / 2 (67%)

#ifndef CEPSHED_WORKLOAD_DS2_H_
#define CEPSHED_WORKLOAD_DS2_H_

#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/rng.h"
#include "src/workload/csv.h"

namespace cepshed {

/// Builds the DS2 schema: types A,B,C,D; attributes ID, x, y, v.
Schema MakeDs2Schema();

/// \brief DS2 generator configuration.
struct Ds2Options {
  size_t num_events = 50000;
  Duration event_gap = 10;
  int num_ids = 10;
  uint64_t seed = 2;
};

/// Generates a DS2 stream over `schema` (must come from MakeDs2Schema).
EventStream GenerateDs2(const Schema& schema, const Ds2Options& options);

/// Loads a DS2-layout CSV (WriteCsv over MakeDs2Schema()) leniently:
/// malformed rows are skipped and counted in *stats (may be null).
/// `schema` must outlive the stream.
Result<EventStream> LoadDs2Csv(const Schema& schema, const std::string& path,
                               CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_DS2_H_
