// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Integration tests: the full harness pipeline (offline training, ground
// truth, strategy runs) on the paper's workloads, checking the qualitative
// result shapes end to end.

#include <gtest/gtest.h>

#include "src/runtime/experiment.h"
#include "src/workload/ds1.h"
#include "src/workload/ds2.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : schema_(MakeDs1Schema()) {}

  void PrepareQ1(size_t n = 15000) {
    Ds1Options gen;
    gen.num_events = n;
    gen.seed = 101;
    const EventStream train = GenerateDs1(schema_, gen);
    gen.seed = 102;
    test_stream_ = std::make_unique<EventStream>(GenerateDs1(schema_, gen));
    harness_ = std::make_unique<ExperimentHarness>(&schema_, *queries::Q1(),
                                                   HarnessOptions{});
    ASSERT_TRUE(harness_->Prepare(train, *test_stream_).ok());
  }

  Schema schema_;
  std::unique_ptr<EventStream> test_stream_;
  std::unique_ptr<ExperimentHarness> harness_;
};

TEST_F(IntegrationTest, GroundTruthHasFullQuality) {
  PrepareQ1();
  const auto none = harness_->RunBound(StrategyKind::kNone, 1.0);
  EXPECT_DOUBLE_EQ(none.quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(none.quality.precision, 1.0);
  EXPECT_EQ(none.raw.dropped_events, 0u);
  EXPECT_EQ(none.raw.shed_pms, 0u);
}

TEST_F(IntegrationTest, TrainingTimeIsInPaperRange) {
  PrepareQ1();
  // The paper reports 0.75-4.5 s; we only require sanity (positive, < 30s).
  EXPECT_GT(harness_->model().train_seconds(), 0.0);
  EXPECT_LT(harness_->model().train_seconds(), 30.0);
}

TEST_F(IntegrationTest, MonotonicQueryNeverProducesFalsePositives) {
  PrepareQ1();
  for (StrategyKind kind : {StrategyKind::kRI, StrategyKind::kRS, StrategyKind::kSS,
                            StrategyKind::kHybrid}) {
    const auto r = harness_->RunBound(kind, 0.5);
    EXPECT_DOUBLE_EQ(r.quality.precision, 1.0) << StrategyName(kind);
  }
}

TEST_F(IntegrationTest, SheddingReducesLatency) {
  PrepareQ1();
  const double baseline = harness_->BaselineLatency();
  const auto hybrid = harness_->RunBound(StrategyKind::kHybrid, 0.5);
  EXPECT_LT(hybrid.avg_latency, baseline);
  EXPECT_GT(hybrid.raw.shed_pms + hybrid.raw.dropped_events, 0u);
}

TEST_F(IntegrationTest, HybridBeatsRandomBaselinesInRecall) {
  PrepareQ1();
  const auto hybrid = harness_->RunBound(StrategyKind::kHybrid, 0.5);
  const auto ri = harness_->RunBound(StrategyKind::kRI, 0.5);
  const auto rs = harness_->RunBound(StrategyKind::kRS, 0.5);
  EXPECT_GT(hybrid.quality.recall, ri.quality.recall);
  EXPECT_GT(hybrid.quality.recall, rs.quality.recall);
}

TEST_F(IntegrationTest, HybridKeepsHighRecallAtLooseBound) {
  PrepareQ1();
  const auto hybrid = harness_->RunBound(StrategyKind::kHybrid, 0.9);
  EXPECT_GT(hybrid.quality.recall, 0.9);
}

TEST_F(IntegrationTest, TighterBoundsShedMoreInputAndReachLowerLatency) {
  PrepareQ1();
  const auto loose = harness_->RunBound(StrategyKind::kHybrid, 0.9);
  const auto tight = harness_->RunBound(StrategyKind::kHybrid, 0.3);
  // Tighter bounds escalate the input filter (more dropped events) and
  // drive the achieved latency down; shed-PM counts are not comparable
  // because dropped events prevent partial matches from ever existing
  // (the turning point of the paper's Fig. 5).
  EXPECT_GE(tight.raw.dropped_events, loose.raw.dropped_events);
  EXPECT_LT(tight.avg_latency, loose.avg_latency);
  EXPECT_LE(tight.quality.recall, loose.quality.recall + 0.02);
}

TEST_F(IntegrationTest, FixedRatioRunsForAllStrategies) {
  PrepareQ1(8000);
  for (StrategyKind kind : {StrategyKind::kRI, StrategyKind::kSI, StrategyKind::kPI,
                            StrategyKind::kHyI, StrategyKind::kRS, StrategyKind::kSS,
                            StrategyKind::kHyS}) {
    const auto r = harness_->RunFixed(kind, 0.3);
    EXPECT_GT(r.quality.recall, 0.0) << StrategyName(kind);
    EXPECT_LE(r.quality.recall, 1.0) << StrategyName(kind);
    if (kind == StrategyKind::kRI || kind == StrategyKind::kSI ||
        kind == StrategyKind::kPI || kind == StrategyKind::kHyI) {
      EXPECT_GT(r.raw.dropped_events, 0u) << StrategyName(kind);
    } else {
      EXPECT_GT(r.raw.shed_pms, 0u) << StrategyName(kind);
    }
  }
}

TEST_F(IntegrationTest, HyIBeatsRandomInputAtEqualRatio) {
  PrepareQ1();
  const auto hyi = harness_->RunFixed(StrategyKind::kHyI, 0.3);
  const auto ri = harness_->RunFixed(StrategyKind::kRI, 0.3);
  // Same drop budget, cost-model choice keeps more matches (Fig. 6a).
  EXPECT_GT(hyi.quality.recall, ri.quality.recall);
}

TEST_F(IntegrationTest, HySBeatsRandomStateAtEqualRatio) {
  PrepareQ1();
  const auto hys = harness_->RunFixed(StrategyKind::kHyS, 0.3);
  const auto rs = harness_->RunFixed(StrategyKind::kRS, 0.3);
  EXPECT_GT(hys.quality.recall, rs.quality.recall);
}

TEST_F(IntegrationTest, NonMonotonicQueryLosesPrecisionNotRecallUnderHyS) {
  // The paper's Fig. 14: shedding partial matches of Q4 keeps recall at 1
  // (only worthless state and witnesses are shed) but produces false
  // positives as witnesses disappear.
  Ds1Options gen;
  gen.num_events = 10000;
  gen.seed = 201;
  // Raise the negated type's probability to make vetoes common.
  gen.type_weights[1] = 2.0;
  const EventStream train = GenerateDs1(schema_, gen);
  gen.seed = 202;
  const EventStream test = GenerateDs1(schema_, gen);

  ExperimentHarness harness(&schema_, *queries::Q4(), HarnessOptions{});
  ASSERT_TRUE(harness.Prepare(train, test).ok());
  const auto r = harness.RunFixed(StrategyKind::kHyS, 0.2);
  EXPECT_GT(r.quality.recall, 0.9);
  EXPECT_LT(r.quality.precision, 1.0);
}

TEST_F(IntegrationTest, Q3OnDs2RunsEndToEnd) {
  Schema schema2 = MakeDs2Schema();
  Ds2Options gen;
  gen.num_events = 8000;
  gen.seed = 301;
  const EventStream train = GenerateDs2(schema2, gen);
  gen.seed = 302;
  const EventStream test = GenerateDs2(schema2, gen);

  ExperimentHarness harness(&schema2, *queries::Q3(), HarnessOptions{});
  ASSERT_TRUE(harness.Prepare(train, test).ok());
  ASSERT_GT(harness.truth().size(), 0u);
  const auto r = harness.RunBound(StrategyKind::kHybrid, 0.6);
  EXPECT_GT(r.quality.recall, 0.3);
}

TEST_F(IntegrationTest, BoundViolationRatioIsReported) {
  PrepareQ1(8000);
  const auto hybrid = harness_->RunBound(StrategyKind::kHybrid, 0.8);
  EXPECT_GE(hybrid.bound_violation_ratio, 0.0);
  EXPECT_LE(hybrid.bound_violation_ratio, 1.0);
}

}  // namespace
}  // namespace cepshed
