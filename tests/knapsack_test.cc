// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit and property tests for the covering-knapsack solvers: the DP must
// match the brute-force oracle, the greedy must stay feasible.

#include "src/opt/knapsack.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace cepshed {
namespace {

TEST(KnapsackTest, EmptyItemsInfeasible) {
  EXPECT_TRUE(SolveCoveringKnapsackDP({}, 0.5).empty());
  EXPECT_TRUE(SolveCoveringKnapsackGreedy({}, 0.5).empty());
}

TEST(KnapsackTest, InfeasibleWhenTotalWeightTooSmall) {
  std::vector<KnapsackItem> items = {{1.0, 0.2}, {1.0, 0.2}};
  EXPECT_TRUE(SolveCoveringKnapsackDP(items, 0.5).empty());
  EXPECT_TRUE(SolveCoveringKnapsackGreedy(items, 0.5).empty());
}

TEST(KnapsackTest, PicksCheapestCoveringItem) {
  // Item 1 covers alone at value 1; item 0 covers alone at value 5.
  std::vector<KnapsackItem> items = {{5.0, 0.6}, {1.0, 0.6}};
  const auto dp = SolveCoveringKnapsackDP(items, 0.5);
  ASSERT_EQ(dp.size(), 1u);
  EXPECT_EQ(dp[0], 1u);
}

TEST(KnapsackTest, ZeroValueItemsAreFree) {
  std::vector<KnapsackItem> items = {{0.0, 0.3}, {0.0, 0.3}, {10.0, 0.9}};
  const auto dp = SolveCoveringKnapsackDP(items, 0.5);
  EXPECT_GT(TotalWeight(items, dp), 0.5);
  EXPECT_DOUBLE_EQ(TotalValue(items, dp), 0.0);
}

TEST(KnapsackTest, GreedySelectsByRatio) {
  std::vector<KnapsackItem> items = {
      {1.0, 0.10},   // ratio 10
      {0.1, 0.30},   // ratio 0.33  <- best
      {0.5, 0.25},   // ratio 2
  };
  const auto sel = SolveCoveringKnapsackGreedy(items, 0.29);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 1u);
}

TEST(KnapsackTest, IntegralGridThresholdDoesNotOverShed) {
  // Regression: the grid target was floor(threshold*scale)+1, which
  // demands one extra grid unit whenever threshold*scale lands exactly on
  // a grid point. Here grid=10 and total weight 10 (scale 1), so the
  // threshold 5 is integral on the grid: item 0 alone (weight 5.5 > 5)
  // covers at value 1, but the old target of 6 grid units forced item 1
  // (value 10) into the selection as well — shedding 11x the recall loss
  // the optimum needs.
  std::vector<KnapsackItem> items = {{1.0, 5.5}, {10.0, 4.5}};
  const auto dp = SolveCoveringKnapsackDP(items, 5.0, /*grid=*/10);
  const auto brute = SolveCoveringKnapsackBrute(items, 5.0);
  ASSERT_FALSE(dp.empty());
  EXPECT_GT(TotalWeight(items, dp), 5.0);
  EXPECT_DOUBLE_EQ(TotalValue(items, dp), TotalValue(items, brute));
  EXPECT_DOUBLE_EQ(TotalValue(items, dp), 1.0);
}

TEST(KnapsackTest, NearIntegralThresholdStaysOptimal) {
  // Just below the grid point the old and new targets agree; pin the
  // behavior so the boundary fix cannot regress its neighborhood.
  std::vector<KnapsackItem> items = {{1.0, 5.5}, {10.0, 4.5}};
  const auto dp = SolveCoveringKnapsackDP(items, 4.999, /*grid=*/10);
  ASSERT_FALSE(dp.empty());
  EXPECT_GT(TotalWeight(items, dp), 4.999);
  EXPECT_DOUBLE_EQ(TotalValue(items, dp), 1.0);
}

TEST(KnapsackTest, ExactGridWeightsSweepMatchesBruteForce) {
  // Integer weights with scale 1 hit the other side of the boundary: a
  // grid sum of exactly ceil(threshold) equals the threshold in real
  // terms and must NOT count as covering (the contract is strict). The
  // solver's second candidate column (one extra grid unit) makes the
  // covering optimal without the greedy top-up distorting the value.
  std::vector<KnapsackItem> items = {{3.0, 1.0}, {1.0, 2.0}, {100.0, 3.0}};
  for (int t = 0; t <= 5; ++t) {
    const auto dp = SolveCoveringKnapsackDP(items, t, /*grid=*/6);
    const auto brute = SolveCoveringKnapsackBrute(items, t);
    ASSERT_FALSE(dp.empty()) << "threshold " << t;
    EXPECT_GT(TotalWeight(items, dp), t) << "threshold " << t;
    EXPECT_DOUBLE_EQ(TotalValue(items, dp), TotalValue(items, brute))
        << "threshold " << t;
  }
}

class KnapsackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackPropertyTest, DpMatchesBruteForceOptimum) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(1, 12));
  std::vector<KnapsackItem> items;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    KnapsackItem item;
    item.value = rng.UniformDouble(0, 1);
    item.weight = rng.UniformDouble(0.01, 0.3);
    total_weight += item.weight;
    items.push_back(item);
  }
  const double threshold = rng.UniformDouble(0, total_weight * 0.9);

  const auto brute = SolveCoveringKnapsackBrute(items, threshold);
  const auto dp = SolveCoveringKnapsackDP(items, threshold, /*grid=*/4096);
  if (brute.empty()) {
    EXPECT_TRUE(dp.empty());
    return;
  }
  ASSERT_FALSE(dp.empty());
  EXPECT_GT(TotalWeight(items, dp), threshold);
  // The DP optimum may differ slightly from the exact optimum due to the
  // weight grid; allow a small tolerance.
  EXPECT_LE(TotalValue(items, dp), TotalValue(items, brute) + 0.05);
}

TEST_P(KnapsackPropertyTest, GreedyIsFeasibleAndNoBetterThanBrute) {
  Rng rng(GetParam() + 1000);
  const int n = static_cast<int>(rng.UniformInt(1, 12));
  std::vector<KnapsackItem> items;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    KnapsackItem item;
    item.value = rng.UniformDouble(0, 1);
    item.weight = rng.UniformDouble(0.01, 0.3);
    total_weight += item.weight;
    items.push_back(item);
  }
  const double threshold = rng.UniformDouble(0, total_weight * 0.9);

  const auto brute = SolveCoveringKnapsackBrute(items, threshold);
  const auto greedy = SolveCoveringKnapsackGreedy(items, threshold);
  if (brute.empty()) {
    EXPECT_TRUE(greedy.empty());
    return;
  }
  ASSERT_FALSE(greedy.empty());
  EXPECT_GT(TotalWeight(items, greedy), threshold);
  EXPECT_GE(TotalValue(items, greedy) + 1e-12, TotalValue(items, brute));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackPropertyTest,
                         ::testing::Range<uint64_t>(1, 40));

}  // namespace
}  // namespace cepshed
