// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Soak driver: long-running stability harness over the hostile workload
// generators. Exits 0 when every post-warmup cycle's footprint gauges stay
// within the slack band of the warmup baseline, 1 on a boundedness
// violation, 2 on usage/setup errors.
//
//   soak_runner --cycles 200 --events 20000 --shards 4 \
//       --workload mixed --seconds 3600 \
//       --report soak_report.json --metrics soak_metrics.json
//
// The nightly CI job runs this for an hour and uploads both the cycle
// report and the final metrics snapshot as artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/obs/export.h"
#include "src/workload/lab/soak.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --cycles N            workload cycles incl. warmup (default 12)\n"
               "  --events N            events per cycle (default 6000)\n"
               "  --shards N            persistent engine shards (default 2)\n"
               "  --workload KIND       drift|burst|kleene|mixed (default mixed)\n"
               "  --kleene-reps N       Q2 Kleene limit (default 3)\n"
               "  --window W            query window, e.g. 1ms (default 1ms)\n"
               "  --theta X             guard latency bound in cost units (default 0)\n"
               "  --budget-mb N         per-shard memory budget MiB (default 8)\n"
               "  --warmup N            baseline cycles (default 3)\n"
               "  --slack X             allowed peak factor over baseline (default 2.0)\n"
               "  --seconds X           wall-time limit, 0 = none (default 0)\n"
               "  --scale-schedule S    cycle-anchored elastic resizes, e.g.\n"
               "                        \"4:4;8:2\" = 4 live shards from cycle 4,\n"
               "                        2 from cycle 8 (default: none)\n"
               "  --seed N              generator seed (default 42)\n"
               "  --report FILE         write the JSON cycle report here\n"
               "  --metrics FILE        write the final metrics snapshot here\n"
               "                        (.json = JSON, else Prometheus text)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cepshed::lab::SoakOptions options;
  std::string report_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cycles") {
      options.cycles = std::atoi(next());
    } else if (arg == "--events") {
      options.events_per_cycle = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      options.num_shards = std::atoi(next());
    } else if (arg == "--workload") {
      options.workload = next();
    } else if (arg == "--kleene-reps") {
      options.kleene_reps = std::atoi(next());
    } else if (arg == "--window") {
      options.window = next();
    } else if (arg == "--theta") {
      options.guard_theta = std::atof(next());
    } else if (arg == "--budget-mb") {
      options.memory_budget_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--warmup") {
      options.warmup_cycles = std::atoi(next());
    } else if (arg == "--slack") {
      options.slack = std::atof(next());
    } else if (arg == "--seconds") {
      options.wall_limit_seconds = std::atof(next());
    } else if (arg == "--scale-schedule") {
      options.scale_schedule = next();
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  cepshed::lab::SoakRunner runner(options);
  auto result = runner.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "soak setup failed: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const cepshed::lab::SoakReport& report = *result;

  for (const auto& c : report.cycles) {
    std::printf(
        "cycle %3d %-7s live=%d%s events=%llu matches=%llu drops=%llu "
        "state_peak=%zu arena_live_peak=%zu arena_cap=%zu flat_peak=%zu "
        "audit=%zu legacy=%zu wall=%.2fs\n",
        c.cycle, c.workload.c_str(), c.live_shards,
        c.resized ? "*" : "", static_cast<unsigned long long>(c.events),
        static_cast<unsigned long long>(c.matches),
        static_cast<unsigned long long>(c.guard_drops), c.state_bytes_peak,
        c.arena_live_bytes_peak, c.arena_capacity_bytes_end, c.flat_cache_peak,
        c.audit_retained, c.legacy_arena_bytes_end, c.wall_seconds);
  }
  std::printf("total: %llu events, %llu matches, %.1fs%s\n",
              static_cast<unsigned long long>(report.total_events),
              static_cast<unsigned long long>(report.total_matches),
              report.total_wall_seconds, report.truncated ? " (truncated)" : "");

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc);
    out << cepshed::lab::RenderSoakJson(options, report) << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write report %s\n", report_path.c_str());
      return 2;
    }
  }
  if (!metrics_path.empty()) {
    if (!cepshed::obs::WriteMetricsFile(metrics_path,
                                        runner.metrics().Snapshot())) {
      std::fprintf(stderr, "failed to write metrics %s\n", metrics_path.c_str());
      return 2;
    }
  }

  if (!report.bounded) {
    std::fprintf(stderr, "UNBOUNDED: %s\n", report.violation.c_str());
    return 1;
  }
  std::printf("bounded: all post-warmup gauge peaks within slack %.2f\n",
              options.slack);
  return 0;
}
