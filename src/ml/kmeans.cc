// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/ml/kmeans.h"

#include <algorithm>
#include <limits>

namespace cepshed {

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points, int k,
                            Rng* rng, int max_iters) {
  return KMeansWeighted(points, std::vector<double>(points.size(), 1.0), k, rng,
                        max_iters);
}

Result<KMeansResult> KMeansWeighted(const std::vector<std::vector<double>>& points,
                                    const std::vector<double>& weights, int k,
                                    Rng* rng, int max_iters) {
  if (points.empty()) return Status::InvalidArgument("k-means: no points");
  if (weights.size() != points.size()) {
    return Status::InvalidArgument("k-means: weights/points size mismatch");
  }
  if (k < 1) return Status::InvalidArgument("k-means: k must be >= 1");
  const size_t n = points.size();
  const size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) return Status::InvalidArgument("k-means: ragged input");
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n);

  KMeansResult result;
  result.labels.assign(n, 0);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(kk);
  centroids.push_back(points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  while (centroids.size() < kk) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dist = SquaredDistance(points[i], centroids.back());
      if (dist < min_dist[i]) min_dist[i] = dist;
      total += min_dist[i] * weights[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    double draw = rng->UniformDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      draw -= min_dist[i] * weights[i];
      if (draw <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  std::vector<double> counts(kk, 0.0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (size_t c = 0; c < centroids.size(); ++c) {
        const double dist = SquaredDistance(points[i], centroids[c]);
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    for (auto& c : centroids) std::fill(c.begin(), c.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto& c = centroids[static_cast<size_t>(result.labels[i])];
      for (size_t j = 0; j < d; ++j) c[j] += points[i][j] * weights[i];
      counts[static_cast<size_t>(result.labels[i])] += weights[i];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0.0) {
        // Re-seed an empty cluster at a random point.
        centroids[c] = points[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(n) - 1))];
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        centroids[c][j] /= counts[c];
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        weights[i] *
        SquaredDistance(points[i], centroids[static_cast<size_t>(result.labels[i])]);
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace cepshed
