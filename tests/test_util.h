// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Shared helpers for the test suites: a small ABCD schema (the shape of the
// paper's dataset DS1) and query/event builders.

#ifndef CEPSHED_TESTS_TEST_UTIL_H_
#define CEPSHED_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/event.h"
#include "src/cep/nfa.h"
#include "src/cep/pattern.h"
#include "src/cep/schema.h"
#include "src/cep/stream.h"

namespace cepshed::testing {

/// Builds the DS1-shaped schema: types A,B,C,D; attributes ID, V.
inline Schema MakeAbcdSchema() {
  Schema schema;
  for (const char* t : {"A", "B", "C", "D"}) {
    auto r = schema.AddEventType(t);
    (void)r;
  }
  (void)schema.AddAttribute("ID", ValueType::kInt);
  (void)schema.AddAttribute("V", ValueType::kInt);
  return schema;
}

/// Shorthand event constructor for the ABCD schema.
inline EventPtr MakeEvent(const Schema& schema, const std::string& type, Timestamp ts,
                          uint64_t seq, int64_t id, int64_t v) {
  std::vector<Value> attrs(schema.num_attributes());
  attrs[static_cast<size_t>(schema.AttributeIndex("ID"))] = Value(id);
  attrs[static_cast<size_t>(schema.AttributeIndex("V"))] = Value(v);
  return std::make_shared<Event>(schema.EventTypeId(type), ts, seq, std::move(attrs));
}

/// Runs a stream through a fresh engine built for `query`; returns matches.
inline std::vector<Match> RunAll(const Schema& schema, Query query,
                                 const std::vector<EventPtr>& events,
                                 EngineOptions options = {}) {
  auto nfa = Nfa::Compile(std::move(query), &schema);
  if (!nfa.ok()) return {};
  Engine engine(*nfa, options);
  std::vector<Match> out;
  for (const EventPtr& e : events) engine.Process(e, &out);
  return out;
}

/// SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID AND a.V+b.V=c.V
/// WITHIN `window` — the paper's Q1.
inline Query MakeQ1(Duration window = Millis(8)) {
  Query q;
  q.name = "Q1";
  q.elements = {
      {"a", "A", -1, false, false, 1, 1},
      {"b", "B", -1, false, false, 1, 1},
      {"c", "C", -1, false, false, 1, 1},
  };
  using E = Expr;
  q.predicates.push_back(E::Compare(CmpOp::kEq, E::Attr("a", RefSelector::kSingle, "ID"),
                                    E::Attr("b", RefSelector::kSingle, "ID")));
  q.predicates.push_back(E::Compare(CmpOp::kEq, E::Attr("a", RefSelector::kSingle, "ID"),
                                    E::Attr("c", RefSelector::kSingle, "ID")));
  q.predicates.push_back(E::Compare(
      CmpOp::kEq,
      E::Binary(BinOp::kAdd, E::Attr("a", RefSelector::kSingle, "V"),
                E::Attr("b", RefSelector::kSingle, "V")),
      E::Attr("c", RefSelector::kSingle, "V")));
  q.window = window;
  return q;
}

}  // namespace cepshed::testing

#endif  // CEPSHED_TESTS_TEST_UTIL_H_
