// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/experiment.h"

#include <cctype>

#include "src/shed/hybrid.h"

namespace cepshed {

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNone: return "None";
    case StrategyKind::kRI: return "RI";
    case StrategyKind::kSI: return "SI";
    case StrategyKind::kRS: return "RS";
    case StrategyKind::kSS: return "SS";
    case StrategyKind::kHybrid: return "Hybrid";
    case StrategyKind::kHyI: return "HyI";
    case StrategyKind::kHyS: return "HyS";
    case StrategyKind::kPI: return "PI";
  }
  return "?";
}

ExperimentHarness::ExperimentHarness(const Schema* schema, Query query,
                                     HarnessOptions options)
    : schema_(schema),
      query_(std::move(query)),
      options_(options),
      train_(schema),
      test_(schema) {}

Status ExperimentHarness::Prepare(const EventStream& train, const EventStream& test) {
  CEPSHED_ASSIGN_OR_RETURN(nfa_, Nfa::Compile(query_, schema_));
  train_ = train;
  test_ = test;

  CEPSHED_ASSIGN_OR_RETURN(
      offline_, EstimateOffline(nfa_, train_, options_.cost_model.num_time_slices,
                                options_.cost_model.use_resource_cost, options_.engine));
  model_ = std::make_unique<CostModel>(nfa_, options_.cost_model);
  Rng rng(options_.seed);
  CEPSHED_RETURN_NOT_OK(model_->Train(offline_, &rng));
  utility_samples_ = ComputeTrainingUtilities(*model_, train_);

  positional_ = std::make_unique<PositionalUtility>(
      static_cast<int>(schema_->num_event_types()), /*buckets=*/8, query_.window);
  CEPSHED_RETURN_NOT_OK(positional_->Train(nfa_, train_));

  hspice_ = std::make_unique<HspiceTable>();
  CEPSHED_RETURN_NOT_OK(hspice_->Train(nfa_, offline_));
  pspice_ = std::make_unique<PspiceModel>();
  CEPSHED_RETURN_NOT_OK(pspice_->Train(nfa_, offline_));

  prepared_ = true;
  return RefreshTruth();
}

Status ExperimentHarness::RefreshTruth() {
  if (!prepared_) return Status::Internal("Prepare must be called first");
  Engine engine(nfa_, options_.engine);
  NoShedder none;
  ShedRunner runner(&engine, &none, options_.latency);
  truth_run_ = runner.Run(test_);
  truth_ = GroundTruth(truth_run_.matches);
  return Status::OK();
}

double ExperimentHarness::BaselineLatency(LatencyStat stat) const {
  switch (stat) {
    case LatencyStat::kAverage: return truth_run_.avg_latency;
    case LatencyStat::kP95: return truth_run_.p95_latency;
    case LatencyStat::kP99: return truth_run_.p99_latency;
  }
  return truth_run_.avg_latency;
}

ExperimentResult ExperimentHarness::RunWith(Shedder* shedder, CostModel* model,
                                            size_t pm_sample_stride) {
  Engine engine(nfa_, options_.engine);
  if (model != nullptr) {
    engine.set_classifier(
        [model](const PartialMatch& pm) { return model->Classify(pm); });
    engine.set_pm_created_hook(
        [model](const PartialMatch& pm, const PartialMatch* parent) {
          model->OnPmCreated(pm, parent, pm.last_ts);
        });
    engine.set_match_hook([model](const Match& m, const PartialMatch* parent) {
      model->OnMatch(m, parent, m.detected_at);
    });
  }
  ShedRunner runner(&engine, shedder, options_.latency);
  if (options_.metrics != nullptr) {
    options_.metrics->EnsureShards(1);
    runner.set_obs(options_.metrics->shard(0));
  }
  ExperimentResult result;
  result.name = shedder->Name();
  result.raw = runner.Run(test_, pm_sample_stride);
  result.quality = ComputeQuality(result.raw.matches, truth_);
  result.throughput_eps =
      result.raw.wall_seconds > 0.0
          ? static_cast<double>(result.raw.total_events) / result.raw.wall_seconds
          : 0.0;
  result.shed_event_ratio =
      result.raw.total_events > 0
          ? static_cast<double>(result.raw.dropped_events) /
                static_cast<double>(result.raw.total_events)
          : 0.0;
  result.shed_pm_ratio =
      result.raw.pms_created > 0
          ? static_cast<double>(result.raw.shed_pms) /
                static_cast<double>(result.raw.pms_created)
          : 0.0;
  result.avg_latency = result.raw.avg_latency;
  result.bound_violation_ratio =
      result.raw.bound_checked > 0
          ? static_cast<double>(result.raw.bound_violations) /
                static_cast<double>(result.raw.bound_checked)
          : 0.0;
  return result;
}

ShedderContext ExperimentHarness::MakeContext(double theta, double fraction,
                                              uint64_t seed) const {
  ShedderContext ctx;
  ctx.theta = theta;
  ctx.fixed_fraction = fraction;
  ctx.trigger_delay = options_.baseline_trigger_delay;
  ctx.hybrid_trigger_delay = options_.trigger_delay;
  ctx.state_shed_period = options_.state_shed_period;
  ctx.seed = seed;
  ctx.solver = options_.solver;
  ctx.offline = &offline_;
  ctx.model = model_.get();
  ctx.positional = positional_.get();
  ctx.hspice = hspice_.get();
  ctx.pspice = pspice_.get();
  ctx.utility_samples = &utility_samples_;
  ctx.train = &train_;
  return ctx;
}

uint64_t ExperimentHarness::SeedId(const std::string& name) {
  // Legacy names keep their StrategyKind enum value: the run seed feeds
  // every stochastic shedder, so changing the id would silently change
  // recorded experiment results across the registry migration.
  static const std::pair<const char*, uint64_t> kLegacy[] = {
      {"none", 0}, {"ri", 1},  {"si", 2},  {"rs", 3}, {"ss", 4},
      {"hybrid", 5}, {"hyi", 6}, {"hys", 7}, {"pi", 8},
  };
  for (const auto& [legacy, id] : kLegacy) {
    if (name == legacy) return id;
  }
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

Result<ExperimentResult> ExperimentHarness::RunSpec(const std::string& spec,
                                                    double theta, double fraction,
                                                    uint64_t seed,
                                                    size_t pm_sample_stride) {
  if (!prepared_) return Status::Internal("Prepare must be called first");
  const ShedderContext ctx = MakeContext(theta, fraction, seed);
  CEPSHED_ASSIGN_OR_RETURN(std::unique_ptr<Shedder> shedder,
                           ShedderRegistry::Instance().Create(spec, ctx));
  return RunWith(shedder.get(), nullptr, pm_sample_stride);
}

Result<ExperimentResult> ExperimentHarness::RunBoundSpec(const std::string& spec,
                                                         double bound_fraction,
                                                         LatencyStat stat,
                                                         size_t pm_sample_stride) {
  CEPSHED_ASSIGN_OR_RETURN(auto parsed, ShedderConfig::ParseSpec(spec));
  LatencyMonitor::Options lat = options_.latency;
  lat.stat = stat;
  HarnessOptions saved = options_;
  options_.latency = lat;
  const double theta = bound_fraction * BaselineLatency(stat);
  const uint64_t seed = options_.seed * 1000003 + SeedId(parsed.first) * 101 +
                        static_cast<uint64_t>(bound_fraction * 1000);
  Result<ExperimentResult> result =
      RunSpec(spec, theta, /*fraction=*/-1.0, seed, pm_sample_stride);
  options_ = saved;
  return result;
}

Result<ExperimentResult> ExperimentHarness::RunFixedSpec(const std::string& spec,
                                                         double ratio,
                                                         size_t pm_sample_stride) {
  CEPSHED_ASSIGN_OR_RETURN(auto parsed, ShedderConfig::ParseSpec(spec));
  const uint64_t seed = options_.seed * 7919 + SeedId(parsed.first) * 31 +
                        static_cast<uint64_t>(ratio * 1000);
  return RunSpec(spec, /*theta=*/-1.0, ratio, seed, pm_sample_stride);
}

namespace {

std::string LowerName(const char* name) {
  std::string out(name);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

ExperimentResult ExperimentHarness::RunBound(StrategyKind kind, double bound_fraction,
                                             LatencyStat stat,
                                             size_t pm_sample_stride) {
  Result<ExperimentResult> result =
      RunBoundSpec(LowerName(StrategyName(kind)), bound_fraction, stat,
                   pm_sample_stride);
  if (!result.ok()) {
    // Every enum strategy is registered and Prepare supplied its
    // ingredients, so this only fires on misuse (e.g. unprepared harness).
    ExperimentResult error;
    error.name = std::string("error: ") + result.status().message();
    return error;
  }
  return std::move(result).value();
}

ExperimentResult ExperimentHarness::RunFixed(StrategyKind kind, double ratio,
                                             size_t pm_sample_stride) {
  Result<ExperimentResult> result =
      RunFixedSpec(LowerName(StrategyName(kind)), ratio, pm_sample_stride);
  if (!result.ok()) {
    ExperimentResult error;
    error.name = std::string("error: ") + result.status().message();
    return error;
  }
  return std::move(result).value();
}

}  // namespace cepshed
