// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the shedding controller (ShedRunner) and the hybrid
// strategy's control behaviour.

#include "src/shed/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/shed/baselines.h"
#include "src/shed/hybrid.h"
#include "src/shed/offline_estimator.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : schema_(MakeDs1Schema()) {}

  EventStream MakeStream(uint64_t seed, size_t n = 6000) {
    Ds1Options opts;
    opts.num_events = n;
    opts.seed = seed;
    return GenerateDs1(schema_, opts);
  }

  std::shared_ptr<const Nfa> CompileQ1() {
    auto nfa = Nfa::Compile(*queries::Q1(), &schema_);
    EXPECT_TRUE(nfa.ok());
    return *nfa;
  }

  Schema schema_;
};

TEST_F(ControllerTest, NoShedRunCountsEverything) {
  auto nfa = CompileQ1();
  Engine engine(nfa, EngineOptions{});
  NoShedder none;
  ShedRunner runner(&engine, &none, LatencyMonitor::Options{});
  const EventStream stream = MakeStream(1);
  const RunResult r = runner.Run(stream);
  EXPECT_EQ(r.total_events, stream.size());
  EXPECT_EQ(r.processed_events, stream.size());
  EXPECT_EQ(r.dropped_events, 0u);
  EXPECT_GT(r.avg_latency, 0.0);
  EXPECT_GE(r.p95_latency, r.avg_latency * 0.1);
  EXPECT_GE(r.p99_latency, r.p95_latency);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST_F(ControllerTest, DroppedEventsCostAlmostNothing) {
  auto nfa = CompileQ1();
  Engine engine(nfa, EngineOptions{});
  RandomInputShedder drop_all(/*fraction=*/1.0, /*seed=*/1);
  ShedRunner runner(&engine, &drop_all, LatencyMonitor::Options{});
  const RunResult r = runner.Run(MakeStream(2));
  EXPECT_EQ(r.dropped_events, r.total_events);
  EXPECT_EQ(r.processed_events, 0u);
  EXPECT_LE(r.avg_latency, ShedRunner::kDroppedEventCost + 1e-9);
  EXPECT_TRUE(r.matches.empty());
}

TEST_F(ControllerTest, PmSeriesSampling) {
  auto nfa = CompileQ1();
  Engine engine(nfa, EngineOptions{});
  NoShedder none;
  ShedRunner runner(&engine, &none, LatencyMonitor::Options{});
  const RunResult r = runner.Run(MakeStream(3, 1000), /*pm_sample_stride=*/100);
  EXPECT_EQ(r.pm_series.size(), 10u);
  EXPECT_EQ(r.pm_series_stride, 100u);
  // The state fills up within the window.
  EXPECT_GT(r.pm_series.back(), 0u);
}

TEST_F(ControllerTest, ExactPercentilesUseTheFloorRankConvention) {
  // The run's exact p95/p99 must equal element floor(q * (n-1)) of the
  // sorted per-event latencies — the HistogramSnapshot::Quantile
  // convention — computed on one working copy. The regression this pins:
  // a second nth_element on an already-partitioned copy once selected the
  // wrong rank, and a ceil-style rank overstated small-sample tails.
  auto nfa = CompileQ1();
  const EventStream stream = MakeStream(9, 3000);

  Engine measured(nfa, EngineOptions{});
  NoShedder none;
  ShedRunner runner(&measured, &none, LatencyMonitor::Options{});
  const RunResult r = runner.Run(stream);

  // Reference: replay the identical deterministic run, collect every
  // per-event cost, and take the sorted floor-rank elements directly.
  Engine reference(nfa, EngineOptions{});
  std::vector<Match> sink;
  std::vector<double> costs;
  costs.reserve(stream.size());
  for (const EventPtr& e : stream) costs.push_back(reference.Process(e, &sink));
  std::sort(costs.begin(), costs.end());
  const size_t n = costs.size();
  const size_t i95 = std::min(n - 1, static_cast<size_t>(0.95 * double(n - 1)));
  const size_t i99 = std::min(n - 1, static_cast<size_t>(0.99 * double(n - 1)));
  EXPECT_DOUBLE_EQ(r.p95_latency, costs[i95]);
  EXPECT_DOUBLE_EQ(r.p99_latency, costs[i99]);
  EXPECT_LE(r.p95_latency, r.p99_latency);
}

TEST_F(ControllerTest, ExactPercentilesOnTinySamples) {
  // With 10 samples both ranks floor to index 8: the second selection must
  // cope with i95 == i99 (a degenerate suffix partition).
  auto nfa = CompileQ1();
  const EventStream stream = MakeStream(10, 10);
  Engine measured(nfa, EngineOptions{});
  NoShedder none;
  ShedRunner runner(&measured, &none, LatencyMonitor::Options{});
  const RunResult r = runner.Run(stream);

  Engine reference(nfa, EngineOptions{});
  std::vector<Match> sink;
  std::vector<double> costs;
  for (const EventPtr& e : stream) costs.push_back(reference.Process(e, &sink));
  std::sort(costs.begin(), costs.end());
  ASSERT_EQ(costs.size(), 10u);
  EXPECT_DOUBLE_EQ(r.p95_latency, costs[8]);
  EXPECT_DOUBLE_EQ(r.p99_latency, costs[8]);
}

TEST_F(ControllerTest, ViolationAccountingAgainstTheta) {
  auto nfa = CompileQ1();
  Engine engine(nfa, EngineOptions{});
  // A strategy that never sheds but advertises an unreachable bound: every
  // post-warmup event violates.
  class Advertiser : public NoShedder {
   public:
    double theta() const override { return 1e-6; }
  };
  Advertiser shedder;
  LatencyMonitor::Options lat;
  lat.window = 100;
  ShedRunner runner(&engine, &shedder, lat);
  const RunResult r = runner.Run(MakeStream(4, 2000));
  EXPECT_EQ(r.bound_checked, 2000u - 99u);
  EXPECT_EQ(r.bound_violations, r.bound_checked);
}

TEST_F(ControllerTest, HybridReleasesFiltersAfterRecovery) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(5, 10000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(nfa, CostModelOptions{});
  Rng rng(1);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  HybridOptions opts;
  opts.theta = 1e9;  // never violated
  HybridShedder shedder(&model, opts);
  Engine engine(nfa, EngineOptions{});
  shedder.Bind(&engine);
  std::vector<Match> out;
  const EventStream stream = MakeStream(6, 2000);
  for (const EventPtr& e : stream) {
    ASSERT_FALSE(shedder.FilterEvent(*e));  // never active without violation
    engine.Process(e, &out);
    shedder.AfterEvent(e->timestamp(), 1.0);
  }
  EXPECT_EQ(shedder.pms_shed(), 0u);
  EXPECT_EQ(shedder.triggers(), 0u);
  EXPECT_FALSE(shedder.input_filter_active());
}

TEST_F(ControllerTest, HybridTriggersUnderViolation) {
  auto nfa = CompileQ1();
  auto stats = EstimateOffline(nfa, MakeStream(7, 10000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(nfa, CostModelOptions{});
  Rng rng(2);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  HybridOptions opts;
  opts.theta = 1.0;  // always violated
  opts.trigger_delay = 100;
  HybridShedder shedder(&model, opts);
  Engine engine(nfa, EngineOptions{});
  engine.set_classifier([&](const PartialMatch& pm) { return model.Classify(pm); });
  shedder.Bind(&engine);
  std::vector<Match> out;
  const EventStream stream = MakeStream(8, 2000);
  for (const EventPtr& e : stream) {
    (void)shedder.FilterEvent(*e);
    engine.Process(e, &out);
    shedder.AfterEvent(e->timestamp(), /*mu=*/100.0);
  }
  EXPECT_GT(shedder.triggers(), 5u);
  EXPECT_GT(shedder.pms_shed() + shedder.events_dropped(), 0u);
}

}  // namespace
}  // namespace cepshed
