// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Chaos suite: replays the differential harness's seeded DS1 stream through
// the sharded runtime under injected faults (src/fault) and the overload
// guard (src/runtime/overload_guard.h) and checks the degradation
// contract:
//
//  - semantically benign faults (stall, slowdown, burst, skew — with the
//    guard off) change *nothing*: the match set equals the fault-free one;
//  - lossy faults (queue saturation, worker death) and guard shedding
//    degrade the output to a *subset* of the fault-free match set, emitted
//    in the same canonical (detected_at, key) order — faults may lose
//    matches but never invent or reorder them;
//  - every run completes (the ctest-level TIMEOUT catches deadlocks),
//    accounting stays consistent (routed == processed + dropped + lost),
//    and fault outcomes are reproducible: the same schedule produces the
//    same result on every run, parallel or sequential;
//  - a shard worker death is survived: restarted within budget (losing
//    exactly the poisoned event) or abandoned (losing its tail), with the
//    run degrading recall instead of failing — unless *every* shard is
//    gone, which surfaces as Status::Unavailable;
//  - the guard escalates under pressure, enforces the partial-match
//    memory budget, and steps back down to normal once the faults clear.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/fault/fault_injector.h"
#include "src/runtime/overload_guard.h"
#include "src/runtime/shard_runtime.h"
#include "src/shed/controller.h"
#include "src/shed/shedder.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

namespace cepshed {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};

struct CanonMatch {
  Timestamp ts;
  std::string key;
  bool operator==(const CanonMatch& o) const = default;
  bool operator<(const CanonMatch& o) const {
    if (ts != o.ts) return ts < o.ts;
    return key < o.key;
  }
};

std::vector<CanonMatch> Canon(const std::vector<Match>& matches) {
  std::vector<CanonMatch> out;
  out.reserve(matches.size());
  for (const Match& m : matches) out.push_back({m.detected_at, m.Key()});
  std::sort(out.begin(), out.end());
  return out;
}

/// The merge contract: matches arrive already in canonical order.
void ExpectCanonicalOrder(const std::vector<Match>& matches) {
  std::vector<CanonMatch> in_order;
  in_order.reserve(matches.size());
  for (const Match& m : matches) in_order.push_back({m.detected_at, m.Key()});
  EXPECT_TRUE(std::is_sorted(in_order.begin(), in_order.end()))
      << "merged matches are not in (detected_at, key) order";
}

/// Degraded runs lose matches, never invent them.
void ExpectSubsetOf(const std::vector<Match>& degraded,
                    const std::vector<CanonMatch>& reference_canon) {
  const std::vector<CanonMatch> canon = Canon(degraded);
  EXPECT_TRUE(std::includes(reference_canon.begin(), reference_canon.end(),
                            canon.begin(), canon.end()))
      << "degraded run produced a match absent from the fault-free run";
}

/// Per-shard and aggregate accounting that must survive any fault.
void ExpectAccountingConsistent(const ShardRunResult& r) {
  uint64_t routed = 0;
  uint64_t handled = 0;
  for (const ShardResult& s : r.shards) {
    EXPECT_EQ(s.events_routed, s.events_processed + s.events_dropped + s.events_lost);
    routed += s.events_routed;
    handled += s.events_processed + s.events_dropped + s.events_lost +
               s.events_rejected;
  }
  // Hash routing delivers each event to exactly one shard, so every stream
  // event is processed, deliberately dropped, lost, or rejected — no event
  // simply vanishes, however ugly the fault schedule.
  EXPECT_EQ(handled, r.total_events);
  // Every successfully pushed event is eventually consumed or drained.
  EXPECT_EQ(routed, r.routed_events);
}

/// Everything that must be bit-identical between two runs of the same
/// deterministic configuration (wall time excluded).
void ExpectSameOutcome(const ShardRunResult& a, const ShardRunResult& b) {
  EXPECT_EQ(Canon(a.matches), Canon(b.matches));
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.dropped_events, b.dropped_events);
  EXPECT_EQ(a.lost_events, b.lost_events);
  EXPECT_EQ(a.worker_restarts, b.worker_restarts);
  EXPECT_EQ(a.shards_abandoned, b.shards_abandoned);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.migrated_pms, b.migrated_pms);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
  EXPECT_EQ(a.final_live_shards, b.final_live_shards);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    EXPECT_EQ(a.shards[i].events_processed, b.shards[i].events_processed);
    EXPECT_EQ(a.shards[i].events_dropped, b.shards[i].events_dropped);
    EXPECT_EQ(a.shards[i].abandoned, b.shards[i].abandoned);
    EXPECT_EQ(a.shards[i].pms_migrated_in, b.shards[i].pms_migrated_in);
    EXPECT_EQ(a.shards[i].pms_migrated_out, b.shards[i].pms_migrated_out);
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    schema_ = new Schema(MakeDs1Schema());
    Ds1Options ds1;
    ds1.num_events = 3000;
    ds1.event_gap = 10;
    ds1.seed = 7;
    stream_ = new EventStream(GenerateDs1(*schema_, ds1));

    auto q = queries::Q1();
    ASSERT_TRUE(q.ok());
    auto nfa = Nfa::Compile(*q, schema_);
    ASSERT_TRUE(nfa.ok()) << nfa.status().message();
    nfa_ = new std::shared_ptr<const Nfa>(*nfa);

    // Fault-free ground truth from the plain sequential engine.
    Engine engine(*nfa_, EngineOptions{});
    NoShedder none;
    ShedRunner runner(&engine, &none, LatencyMonitor::Options{});
    reference_ = new std::vector<CanonMatch>(Canon(runner.Run(*stream_).matches));
    ASSERT_GT(reference_->size(), 0u) << "degenerate reference";
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete nfa_;
    delete stream_;
    delete schema_;
  }

  static ShardRuntimeOptions BaseOptions(int num_shards) {
    ShardRuntimeOptions opts;
    opts.num_shards = num_shards;
    opts.partition_attr = schema_->AttributeIndex("ID");
    // Short enough that dead-worker detection happens within test budget.
    opts.push_timeout_us = 5'000;
    return opts;
  }

  static FaultInjector ParseFaults(const std::string& spec, uint64_t seed = 0) {
    auto f = FaultInjector::Parse(spec, seed);
    EXPECT_TRUE(f.ok()) << f.status().message();
    return f.ok() ? *f : FaultInjector();
  }

  static Result<ShardRunResult> RunWith(const ShardRuntimeOptions& opts) {
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    EXPECT_TRUE(runtime.ok()) << runtime.status().message();
    return (*runtime)->Run(*stream_);
  }

  static Schema* schema_;
  static EventStream* stream_;
  static std::shared_ptr<const Nfa>* nfa_;
  static std::vector<CanonMatch>* reference_;
};

Schema* ChaosTest::schema_ = nullptr;
EventStream* ChaosTest::stream_ = nullptr;
std::shared_ptr<const Nfa>* ChaosTest::nfa_ = nullptr;
std::vector<CanonMatch>* ChaosTest::reference_ = nullptr;

// ---------------------------------------------------------------------------
// Schedule DSL.

TEST(FaultDslTest, ParsesAndRoundTrips) {
  auto f = FaultInjector::Parse(
      "stall:shard=0,at=200,ms=30; slow:at=10,count=50,us=100;"
      "burst:shard=1,at=5,count=20,factor=8.5;saturate:shard=2,at=7,count=3;"
      "skew:at=0,count=10,us=-500;death:shard=1,at=500",
      42);
  ASSERT_TRUE(f.ok()) << f.status().message();
  EXPECT_EQ(f->specs().size(), 6u);
  EXPECT_EQ(f->seed(), 42u);
  EXPECT_EQ(f->specs()[0].kind, FaultKind::kStall);
  EXPECT_EQ(f->specs()[0].micros, 30'000);
  EXPECT_EQ(f->specs()[4].micros, -500);
  EXPECT_EQ(f->specs()[4].shard, -1);

  // The canonical rendering reparses to the same schedule.
  auto again = FaultInjector::Parse(f->ToString(), 42);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(again->ToString(), f->ToString());

  auto empty = FaultInjector::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(FaultDslTest, RejectsMalformedSchedules) {
  EXPECT_FALSE(FaultInjector::Parse("meteor:at=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("stall:when=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("stall:at=banana").ok());
  EXPECT_FALSE(FaultInjector::Parse("stall:at=-3").ok());
  EXPECT_FALSE(FaultInjector::Parse("stall:at").ok());
  EXPECT_FALSE(FaultInjector::Parse("slow:at=1,count=0,us=5").ok());
  EXPECT_FALSE(FaultInjector::Parse("slow:at=1,us=-5").ok());
  EXPECT_FALSE(FaultInjector::Parse("burst:at=1,factor=0").ok());
  EXPECT_FALSE(FaultInjector::Parse("burst:at=1,factor=1").ok());
}

TEST(FaultDslTest, QueriesAreAnchoredAndScoped) {
  auto f = FaultInjector::Parse("death:shard=1,at=5;slow:at=2,count=3,us=40");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->OnConsume(1, 5).die);
  EXPECT_FALSE(f->OnConsume(0, 5).die);  // scoped to shard 1
  EXPECT_FALSE(f->OnConsume(1, 4).die);  // anchored to ordinal 5
  EXPECT_EQ(f->OnConsume(3, 2).stall_us, 40);   // shard=-1 hits every shard
  EXPECT_EQ(f->OnConsume(3, 4).stall_us, 40);   // window [2, 5)
  EXPECT_EQ(f->OnConsume(3, 5).stall_us, 0);

  auto sat = FaultInjector::Parse("saturate:shard=0,at=100,count=10");
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(sat->SaturatePush(0, 100));
  EXPECT_TRUE(sat->SaturatePush(0, 109));
  EXPECT_FALSE(sat->SaturatePush(0, 110));
  EXPECT_FALSE(sat->SaturatePush(1, 100));
}

// ---------------------------------------------------------------------------
// Benign faults: timing changes, semantics must not.

TEST_F(ChaosTest, BenignFaultsPreserveTheMatchSet) {
  const struct {
    const char* name;
    const char* spec;
  } kBenign[] = {
      {"stall", "stall:shard=0,at=100,ms=2"},
      {"slowdown", "slow:at=50,count=100,us=20"},
      {"burst", "burst:at=200,count=400,factor=25"},
      {"skew", "skew:at=0,count=1000,us=-2000"},
  };
  for (const auto& fault : kBenign) {
    const FaultInjector faults = ParseFaults(fault.spec);
    for (const int num_shards : kShardCounts) {
      SCOPED_TRACE(std::string(fault.name) + " shards=" + std::to_string(num_shards));
      ShardRuntimeOptions opts = BaseOptions(num_shards);
      opts.faults = &faults;
      auto run = RunWith(opts);
      ASSERT_TRUE(run.ok()) << run.status().message();
      EXPECT_EQ(Canon(run->matches), *reference_);
      ExpectCanonicalOrder(run->matches);
      ExpectAccountingConsistent(*run);
      EXPECT_EQ(run->lost_events, 0u);
      EXPECT_EQ(run->worker_restarts, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Lossy faults: bounded, deterministic degradation.

TEST_F(ChaosTest, SaturationLosesExactlyTheRefusedWindow) {
  const FaultInjector faults = ParseFaults("saturate:shard=0,at=300,count=200");
  for (const int num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_GT(run->lost_events, 0u);
    // Only stream sequences [300, 500) routed to shard 0 can be refused.
    EXPECT_LE(run->lost_events, 200u);
    ExpectSubsetOf(run->matches, *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);

    // Saturation is anchored to stream sequence numbers: replaying the
    // schedule reproduces the loss exactly, in parallel and sequentially.
    auto again = RunWith(opts);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*run, *again);
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*run, *sequential);
  }
}

TEST_F(ChaosTest, WorkerDeathIsRestartedLosingOneEvent) {
  const FaultInjector faults = ParseFaults("death:shard=0,at=50");
  for (const int num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.max_worker_restarts = 1;
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->worker_restarts, 1u);
    EXPECT_EQ(run->shards_abandoned, 0);
    EXPECT_EQ(run->lost_events, 1u);  // exactly the poisoned event
    ExpectSubsetOf(run->matches, *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);

    auto again = RunWith(opts);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*run, *again);
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*run, *sequential);
  }
}

TEST_F(ChaosTest, RepeatedDeathAbandonsTheShardButTheRunCompletes) {
  const FaultInjector faults = ParseFaults("death:shard=0,at=50;death:shard=0,at=120");
  for (const int num_shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.max_worker_restarts = 1;
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->worker_restarts, 1u);
    EXPECT_EQ(run->shards_abandoned, 1);
    EXPECT_TRUE(run->shards[0].abandoned);
    EXPECT_GT(run->lost_events, 1u);  // the tail of shard 0 is gone
    // The surviving shards still deliver their share.
    EXPECT_GT(run->matches.size(), 0u);
    ExpectSubsetOf(run->matches, *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);

    auto again = RunWith(opts);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*run, *again);
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*run, *sequential);
  }
}

TEST_F(ChaosTest, EveryShardDeadIsUnavailableNotADeadlock) {
  const FaultInjector faults = ParseFaults("death:at=0;death:at=1");
  for (const int num_shards : {1, 2}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.max_worker_restarts = 1;
    auto run = RunWith(opts);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);

    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_FALSE(sequential.ok());
    EXPECT_EQ(sequential.status().code(), StatusCode::kUnavailable);
  }
}

// ---------------------------------------------------------------------------
// Overload guard under fault pressure.

ShardRuntimeOptions DeterministicGuardOptions(ShardRuntimeOptions opts) {
  opts.guard.enabled = true;
  // A short monitor window so mu tracks the burst (and its end) quickly.
  opts.latency.window = 64;
  opts.guard.trigger_delay = 16;
  opts.guard.check_every = 16;
  opts.guard.escalate_after = 2;
  opts.guard.recover_after = 4;
  // Neutralize the (timing-sensitive) queue signal: the run becomes a
  // pure function of the schedule, reproducible bit for bit.
  opts.guard.queue_high = 1.5;
  opts.guard.queue_low = 1.0;
  return opts;
}

TEST_F(ChaosTest, GuardEscalatesUnderBurstAndRecovers) {
  // Baseline latency of this stream/query, from an undisturbed run.
  auto baseline = RunWith(BaseOptions(1));
  ASSERT_TRUE(baseline.ok());
  const double base_mu = baseline->shards[0].avg_latency;
  ASSERT_GT(base_mu, 0.0);

  // The burst makes events 40x as expensive mid-stream, after the engine's
  // per-event cost has reached its windowed steady state (early-stream
  // events are much cheaper than the run average, so an early burst could
  // stay under any theta derived from it). Theta sits at 2x the run
  // average: far below the burst, comfortably above the steady state, so
  // the guard must escalate during the burst and fully recover in the
  // quiet tail.
  const FaultInjector faults = ParseFaults("burst:at=1500,count=600,factor=40");
  ShardRuntimeOptions opts = DeterministicGuardOptions(BaseOptions(1));
  opts.faults = &faults;
  opts.guard.theta = 2.0 * base_mu;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();

  const ShardResult& s = run->shards[0];
  EXPECT_GT(s.guard_escalations, 0u);
  EXPECT_GE(s.guard_peak_level, static_cast<int>(GuardLevel::kShedding));
  // Recovery: pressure is long gone by end of stream.
  EXPECT_EQ(s.guard_final_level, static_cast<int>(GuardLevel::kNormal));
  EXPECT_GT(run->guard_input_drops, 0u);
  EXPECT_GE(run->dropped_events, run->guard_input_drops);
  ExpectSubsetOf(run->matches, *reference_);
  ExpectCanonicalOrder(run->matches);
  ExpectAccountingConsistent(*run);

  // With the queue signal neutral the guard sees only deterministic
  // inputs (cost-unit latency, engine memory): exact replayability, in
  // parallel and sequentially, also across shard counts.
  for (const int num_shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions sharded = DeterministicGuardOptions(BaseOptions(num_shards));
    sharded.faults = &faults;
    sharded.guard.theta = 2.0 * base_mu;
    auto first = RunWith(sharded);
    ASSERT_TRUE(first.ok()) << first.status().message();
    ExpectSubsetOf(first->matches, *reference_);
    ExpectCanonicalOrder(first->matches);
    ExpectAccountingConsistent(*first);
    auto again = RunWith(sharded);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*first, *again);
    auto runtime = ShardRuntime::Create(*nfa_, sharded);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*first, *sequential);
  }
}

TEST_F(ChaosTest, GuardEnforcesThePartialMatchMemoryBudget) {
  // Measure the natural state footprint, then budget a quarter of it.
  const ShardRuntimeOptions probe = DeterministicGuardOptions(BaseOptions(1));
  auto unbounded = RunWith(probe);
  ASSERT_TRUE(unbounded.ok());
  const size_t natural_peak = unbounded->shards[0].guard_peak_state_bytes;
  ASSERT_GT(natural_peak, 0u);

  ShardRuntimeOptions opts = probe;
  opts.guard.memory_budget_bytes = natural_peak / 4;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  // The ladder escalates off the memory watermark and relieves pressure
  // with shedding-level trims; the hard per-event eviction backstops it.
  // Either way, partial matches must have been killed for the budget...
  EXPECT_GT(run->guard_trims + run->guard_evictions, 0u);
  // ...and the state estimate must stay bounded, nowhere near the natural
  // footprint.
  EXPECT_LT(run->shards[0].guard_peak_state_bytes, natural_peak / 2);
  ExpectSubsetOf(run->matches, *reference_);
  ExpectCanonicalOrder(run->matches);
  ExpectAccountingConsistent(*run);

  auto again = RunWith(opts);
  ASSERT_TRUE(again.ok());
  ExpectSameOutcome(*run, *again);
}

// ---------------------------------------------------------------------------
// Everything at once.

TEST_F(ChaosTest, CombinedChaosStillDegradesGracefully) {
  const FaultInjector faults = ParseFaults(
      "stall:shard=0,at=100,ms=2;"
      "slow:at=200,count=100,us=10;"
      "burst:at=400,count=300,factor=30;"
      "skew:at=500,count=200,us=-1500;"
      "saturate:shard=0,at=900,count=100;"
      "death:shard=0,at=100",
      7);
  for (const int num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.max_worker_restarts = 1;
    opts.guard.enabled = true;
    opts.guard.theta = 0.0;  // pressure arrives via queue + memory here
    opts.guard.memory_budget_bytes = 1u << 20;
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->shards_abandoned, 0);
    EXPECT_LE(run->worker_restarts, 1u);
    ExpectSubsetOf(run->matches, *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);
  }
}

// ---------------------------------------------------------------------------
// Elastic resharding: scripted and dynamic scale-up/down with deterministic
// partial-match migration.

TEST(FaultDslTest, ResizeEntriesParseScopeAndRoundTrip) {
  auto f = FaultInjector::Parse(
      "resize:at=900,delta=+2;resize:shard=1,at=40,delta=-1");
  ASSERT_TRUE(f.ok()) << f.status().message();
  ASSERT_EQ(f->specs().size(), 2u);
  EXPECT_TRUE(f->has_resizes());
  EXPECT_EQ(f->specs()[0].kind, FaultKind::kResize);
  EXPECT_EQ(f->specs()[0].delta, 2);
  EXPECT_EQ(f->specs()[0].shard, -1);
  EXPECT_EQ(f->specs()[1].delta, -1);
  EXPECT_EQ(f->specs()[1].shard, 1);

  auto again = FaultInjector::Parse(f->ToString());
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(again->ToString(), f->ToString());

  // Resize is a router-side anchor, never a consume-time fault.
  EXPECT_FALSE(f->OnConsume(1, 40).die);
  EXPECT_EQ(f->OnConsume(1, 40).stall_us, 0);

  EXPECT_FALSE(FaultInjector::Parse("resize:at=10").ok());          // no delta
  EXPECT_FALSE(FaultInjector::Parse("resize:at=10,delta=0").ok());  // no-op
}

TEST_F(ChaosTest, ScheduledResizeGrowAndShrinkPreservesTheMatchSet) {
  // Grow by two mid-stream, shrink by one later: the resize is semantically
  // invisible — in-flight partial matches follow their keys to the new
  // owners, so the match set equals the fault-free reference exactly.
  const FaultInjector faults =
      ParseFaults("resize:at=600,delta=+2;resize:at=1800,delta=-1");
  for (const int num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.reshard.max_shards = 12;  // headroom so +2 is never clamped
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(Canon(run->matches), *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);
    EXPECT_EQ(run->resizes, 2u);
    EXPECT_EQ(run->final_live_shards, num_shards + 1);
    EXPECT_EQ(run->lost_events, 0u);
    EXPECT_EQ(run->worker_restarts, 0u);
    // Rehashing the key space moves state both times.
    EXPECT_GT(run->migrated_pms, 0u);
    uint64_t in = 0, out = 0;
    for (const ShardResult& s : run->shards) {
      in += s.pms_migrated_in;
      out += s.pms_migrated_out;
    }
    EXPECT_EQ(in, run->migrated_pms);
    EXPECT_EQ(out, run->migrated_pms);

    // The resize points are stream-sequence anchors: bit-for-bit
    // reproducible, in parallel and sequentially.
    auto again = RunWith(opts);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*run, *again);
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*run, *sequential);
  }
}

TEST_F(ChaosTest, ShardScopedResizeAnchorsToTheDonorsDeliveries) {
  // shard=0,at=120 fires once shard 0 has accepted its 120th event — a
  // per-shard anchor, deterministic under hash routing.
  const FaultInjector faults = ParseFaults("resize:shard=0,at=120,delta=+1");
  ShardRuntimeOptions opts = BaseOptions(2);
  opts.faults = &faults;
  opts.reshard.max_shards = 4;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->resizes, 1u);
  EXPECT_EQ(run->final_live_shards, 3);
  EXPECT_EQ(Canon(run->matches), *reference_);
  ExpectAccountingConsistent(*run);

  auto runtime = ShardRuntime::Create(*nfa_, opts);
  ASSERT_TRUE(runtime.ok());
  auto sequential = (*runtime)->RunSequential(*stream_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameOutcome(*run, *sequential);
}

TEST_F(ChaosTest, ResizeClampsAtTheProvisionedBounds) {
  // Shrink below min_shards and grow above max_shards are clamped to
  // no-ops: no resize executes, nothing migrates, the run is untouched.
  const FaultInjector faults =
      ParseFaults("resize:at=300,delta=-5;resize:at=700,delta=+9");
  ShardRuntimeOptions opts = BaseOptions(2);
  opts.faults = &faults;
  opts.reshard.min_shards = 2;
  opts.reshard.max_shards = 2;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->resizes, 0u);
  EXPECT_EQ(run->migrated_pms, 0u);
  EXPECT_EQ(run->final_live_shards, 2);
  EXPECT_EQ(Canon(run->matches), *reference_);
}

TEST_F(ChaosTest, DeathDuringMigrationDrainIsResolvedAtTheBarrier) {
  // The donor's worker dies on its 40th consume; whether the router first
  // notices at a push timeout or at the migration barrier's drain, the
  // outcome is the same: one restart, exactly the poisoned event lost, and
  // the resize then completes normally.
  const FaultInjector faults =
      ParseFaults("death:shard=0,at=40;resize:at=600,delta=+1");
  for (const int num_shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardRuntimeOptions opts = BaseOptions(num_shards);
    opts.faults = &faults;
    opts.reshard.max_shards = 12;
    opts.max_worker_restarts = 1;
    auto run = RunWith(opts);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->worker_restarts, 1u);
    EXPECT_EQ(run->shards_abandoned, 0);
    EXPECT_EQ(run->lost_events, 1u);
    EXPECT_EQ(run->resizes, 1u);
    EXPECT_EQ(run->final_live_shards, num_shards + 1);
    ExpectSubsetOf(run->matches, *reference_);
    ExpectCanonicalOrder(run->matches);
    ExpectAccountingConsistent(*run);

    auto again = RunWith(opts);
    ASSERT_TRUE(again.ok());
    ExpectSameOutcome(*run, *again);
    auto runtime = ShardRuntime::Create(*nfa_, opts);
    ASSERT_TRUE(runtime.ok());
    auto sequential = (*runtime)->RunSequential(*stream_);
    ASSERT_TRUE(sequential.ok());
    ExpectSameOutcome(*run, *sequential);
  }
}

TEST_F(ChaosTest, DeathOnTheRecipientAfterResumeIsRestarted) {
  // Shard 2 exists only after the grow at seq 600; it adopts migrated
  // state, then its worker dies on its 10th delivered event. The restart
  // must not disturb the adopted partial matches beyond the one poisoned
  // event.
  const FaultInjector faults =
      ParseFaults("resize:at=600,delta=+1;death:shard=2,at=10");
  ShardRuntimeOptions opts = BaseOptions(2);
  opts.faults = &faults;
  opts.reshard.max_shards = 4;
  opts.max_worker_restarts = 1;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->resizes, 1u);
  EXPECT_EQ(run->final_live_shards, 3);
  EXPECT_EQ(run->worker_restarts, 1u);
  EXPECT_EQ(run->shards[2].worker_restarts, 1u);
  EXPECT_EQ(run->lost_events, 1u);
  EXPECT_GT(run->shards[2].pms_migrated_in, 0u);
  ExpectSubsetOf(run->matches, *reference_);
  ExpectAccountingConsistent(*run);

  auto again = RunWith(opts);
  ASSERT_TRUE(again.ok());
  ExpectSameOutcome(*run, *again);
  auto runtime = ShardRuntime::Create(*nfa_, opts);
  ASSERT_TRUE(runtime.ok());
  auto sequential = (*runtime)->RunSequential(*stream_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameOutcome(*run, *sequential);
}

TEST_F(ChaosTest, AbandonedDonorStillDonatesItsFrozenState) {
  // Shard 0 exhausts its restart budget long before the resize. The grow
  // must still complete: the abandoned shard's engine state is frozen, and
  // whatever partial matches rehash to the new shard move there — keys
  // that leave the dead shard resume matching.
  const FaultInjector faults = ParseFaults(
      "death:shard=0,at=40;death:shard=0,at=90;resize:at=600,delta=+1");
  ShardRuntimeOptions opts = BaseOptions(2);
  opts.faults = &faults;
  opts.reshard.max_shards = 4;
  opts.max_worker_restarts = 1;
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->shards_abandoned, 1);
  EXPECT_TRUE(run->shards[0].abandoned);
  EXPECT_EQ(run->resizes, 1u);
  EXPECT_EQ(run->final_live_shards, 3);
  EXPECT_GT(run->matches.size(), 0u);
  ExpectSubsetOf(run->matches, *reference_);
  ExpectCanonicalOrder(run->matches);
  ExpectAccountingConsistent(*run);

  auto runtime = ShardRuntime::Create(*nfa_, opts);
  ASSERT_TRUE(runtime.ok());
  auto sequential = (*runtime)->RunSequential(*stream_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameOutcome(*run, *sequential);
}

TEST_F(ChaosTest, DynamicScaleUpRecordsAndReplaysAsAScript) {
  // Baseline latency for a guard theta, as in GuardEscalatesUnderBurst.
  auto baseline = RunWith(BaseOptions(1));
  ASSERT_TRUE(baseline.ok());
  const double base_mu = baseline->shards[0].avg_latency;
  ASSERT_GT(base_mu, 0.0);

  // A long 40x burst drives the guard to shedding; the controller watches
  // the guard ladder (the queue signal is neutralized: grow fraction above
  // 1 is unreachable, shrink below 0 never idles) and grows. Dynamic
  // decisions read a racy guard level, so the run itself is not replay-
  // deterministic — instead the resize tap records every executed resize
  // and the recorded schedule must replay bit for bit, parallel and
  // sequential.
  const FaultInjector burst = ParseFaults("burst:at=1200,count=900,factor=40");
  ShardRuntimeOptions opts = DeterministicGuardOptions(BaseOptions(1));
  opts.faults = &burst;
  opts.guard.theta = 2.0 * base_mu;
  // A queue smaller than the stream: the router is paced by the burdened
  // worker, so its periodic checks observe the published guard level
  // while the burst is actually in progress.
  opts.queue_capacity = 256;
  opts.reshard.enabled = true;
  opts.reshard.max_shards = 4;
  opts.reshard.check_every = 64;
  opts.reshard.grow_after = 2;
  opts.reshard.min_dwell = 256;
  opts.reshard.queue_grow_fraction = 1.5;
  opts.reshard.queue_shrink_fraction = -1.0;
  opts.reshard.guard_hot_level = static_cast<int>(GuardLevel::kShedding);
  std::vector<std::pair<uint64_t, int>> recorded;  // (seq, delta)
  opts.resize_tap = [&recorded](uint64_t seq, int old_live, int new_live) {
    recorded.push_back({seq, new_live - old_live});
  };
  auto run = RunWith(opts);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_GE(run->resizes, 1u);
  EXPECT_GT(run->final_live_shards, 1);
  EXPECT_EQ(run->resizes, recorded.size());
  ExpectSubsetOf(run->matches, *reference_);
  ExpectCanonicalOrder(run->matches);
  ExpectAccountingConsistent(*run);

  // Fold the recorded resizes into a scripted schedule and replay with the
  // controller off.
  std::string spec = burst.ToString();
  for (const auto& [seq, delta] : recorded) {
    spec += ";resize:at=" + std::to_string(seq) +
            ",delta=" + std::to_string(delta);
  }
  const FaultInjector replay_faults = ParseFaults(spec);
  ShardRuntimeOptions replay = opts;
  replay.faults = &replay_faults;
  replay.reshard.enabled = false;
  replay.resize_tap = nullptr;
  auto replayed = RunWith(replay);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ExpectSameOutcome(*run, *replayed);
  auto runtime = ShardRuntime::Create(*nfa_, replay);
  ASSERT_TRUE(runtime.ok());
  auto sequential = (*runtime)->RunSequential(*stream_);
  ASSERT_TRUE(sequential.ok());
  ExpectSameOutcome(*run, *sequential);
}

TEST_F(ChaosTest, ElasticPlansAreValidated) {
  const FaultInjector resize = ParseFaults("resize:at=100,delta=+1");

  // Window-slice routing pins slices to their owners — resizes are
  // rejected at plan time.
  ShardRuntimeOptions slice = BaseOptions(2);
  slice.routing = ShardRouting::kWindowSlice;
  slice.faults = &resize;
  EXPECT_EQ(ShardRuntime::Create(*nfa_, slice).status().code(),
            StatusCode::kInvalidArgument);

  // Elastic hash routing needs a partition attribute even for a run that
  // starts single-sharded: it can grow.
  ShardRuntimeOptions no_attr = BaseOptions(1);
  no_attr.partition_attr = -1;
  no_attr.faults = &resize;
  EXPECT_EQ(ShardRuntime::Create(*nfa_, no_attr).status().code(),
            StatusCode::kInvalidArgument);

  // min_shards must stay positive.
  ShardRuntimeOptions bad_min = BaseOptions(2);
  bad_min.faults = &resize;
  bad_min.reshard.min_shards = 0;
  EXPECT_EQ(ShardRuntime::Create(*nfa_, bad_min).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cepshed
