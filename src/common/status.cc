// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/common/status.h"

namespace cepshed {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace cepshed
