// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cepshed {

Status WriteCsv(const EventStream& stream, std::ostream* out) {
  const Schema& schema = stream.schema();
  *out << "type,timestamp";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    *out << "," << schema.attribute(static_cast<int>(a)).name;
  }
  *out << "\n";
  for (const EventPtr& e : stream) {
    *out << schema.EventTypeName(e->type()) << "," << e->timestamp();
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const Value& v = e->attr(static_cast<int>(a));
      *out << ",";
      if (!v.is_null()) *out << v.ToString();
    }
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const EventStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open " + path);
  return WriteCsv(stream, &out);
}

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

/// Parses one data row into (type, ts, attrs). Any failure is returned as
/// ParseError; the caller decides whether that fails the read or just
/// skips the row.
Status ParseRow(const Schema& schema, const std::vector<std::string>& cells,
                size_t expected_cells, size_t line_no, int* type, Timestamp* ts,
                std::vector<Value>* attrs) {
  if (cells.size() != expected_cells) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": wrong number of cells");
  }
  *type = schema.EventTypeId(cells[0]);
  if (*type < 0) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": unknown type '" + cells[0] + "'");
  }
  try {
    size_t used = 0;
    *ts = std::stoll(cells[1], &used);
    if (used != cells[1].size()) throw std::invalid_argument(cells[1]);
  } catch (...) {
    return Status::ParseError("CSV line " + std::to_string(line_no) +
                              ": bad timestamp '" + cells[1] + "'");
  }
  attrs->assign(schema.num_attributes(), Value());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const std::string& cell = cells[a + 2];
    if (cell.empty()) continue;
    switch (schema.attribute(static_cast<int>(a)).type) {
      case ValueType::kInt:
        try {
          size_t used = 0;
          (*attrs)[a] = Value(static_cast<int64_t>(std::stoll(cell, &used)));
          if (used != cell.size()) throw std::invalid_argument(cell);
        } catch (...) {
          return Status::ParseError("CSV line " + std::to_string(line_no) +
                                    ": bad int '" + cell + "'");
        }
        break;
      case ValueType::kDouble:
        try {
          size_t used = 0;
          (*attrs)[a] = Value(std::stod(cell, &used));
          if (used != cell.size()) throw std::invalid_argument(cell);
        } catch (...) {
          return Status::ParseError("CSV line " + std::to_string(line_no) +
                                    ": bad double '" + cell + "'");
        }
        break;
      default:
        (*attrs)[a] = Value(cell);
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<EventStream> ReadCsv(const Schema& schema, std::istream* in,
                            const CsvReadOptions& options, CsvReadStats* stats) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("CSV input is empty");
  }
  const std::vector<std::string> header = SplitLine(line);
  if (header.size() != 2 + schema.num_attributes() || header[0] != "type" ||
      header[1] != "timestamp") {
    return Status::InvalidArgument("CSV header does not match the schema");
  }
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (header[a + 2] != schema.attribute(static_cast<int>(a)).name) {
      return Status::InvalidArgument("CSV column '" + header[a + 2] +
                                     "' does not match attribute '" +
                                     schema.attribute(static_cast<int>(a)).name + "'");
    }
  }

  EventStream stream(&schema);
  CsvReadStats local;
  CsvReadStats* counters = stats != nullptr ? stats : &local;
  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ++counters->rows_read;
    int type = -1;
    Timestamp ts = 0;
    std::vector<Value> attrs;
    Status row = ParseRow(schema, SplitLine(line), header.size(), line_no, &type,
                          &ts, &attrs);
    // Emit can also reject the row (timestamps must be non-decreasing);
    // that is a property of the row's data, handled like any parse error.
    if (row.ok()) row = stream.Emit(type, ts, std::move(attrs));
    if (!row.ok()) {
      if (!options.lenient) return row;
      ++counters->malformed_rows;
    }
  }
  return stream;
}

Result<EventStream> ReadCsvFile(const Schema& schema, const std::string& path,
                                const CsvReadOptions& options, CsvReadStats* stats) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::InvalidArgument("cannot open " + path);
  return ReadCsv(schema, &in, options, stats);
}

}  // namespace cepshed
