// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace cepshed {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() == ValueType::kString || other.type() == ValueType::kString) {
    if (type() != other.type()) return false;
    return AsString() == other.AsString();
  }
  if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
    return AsInt() == other.AsInt();
  }
  return ToDouble() == other.ToDouble();
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) return -2;
  const bool lhs_str = type() == ValueType::kString;
  const bool rhs_str = other.type() == ValueType::kString;
  if (lhs_str != rhs_str) return -2;
  if (lhs_str) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
    const int64_t a = AsInt();
    const int64_t b = other.AsInt();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = ToDouble();
  const double b = other.ToDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt: {
      // Hash ints through their double representation when exactly
      // representable, so that Value(2) and Value(2.0) collide (they are
      // Equals()-equal under numeric promotion).
      const int64_t i = AsInt();
      const double d = static_cast<double>(i);
      if (static_cast<int64_t>(d) == i) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(i);
    }
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

}  // namespace cepshed
