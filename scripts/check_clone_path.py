#!/usr/bin/env python3
"""CI gate: clone-path cost must not scale with match length.

Reads a google-benchmark JSON file containing BM_EngineKleeneClone/<cap>
rows (raw repetitions or aggregates). Each arm drives the same chained
Kleene workload with a different chain-length cap, and throughput is
reported in clones per second, so arms are directly comparable: with the
shared-prefix (copy-on-write) match representation a clone is O(1) in the
parent length and clones/sec stays roughly flat as the cap grows, while a
flat-vector copy degrades linearly (measured ~5x from cap 4 to cap 256).

The gate compares the longest-chain arm against the shortest-chain arm
and fails when the ratio drops below the threshold. Per-arm maxima over
repetitions are used: the statistic least sensitive to noisy-neighbour
drift on shared CI runners.

Usage: check_clone_path.py BENCH_JSON [--min-ratio 0.5]
"""

import argparse
import json
import re
import sys


def collect(benchmarks):
    """Map cap -> max items_per_second (clones/sec) over repetitions."""
    best = {}
    for b in benchmarks:
        m = re.match(r"^BM_EngineKleeneClone/(\d+)(?:_(\w+))?$", b["name"])
        if not m:
            continue
        cap, agg = int(m.group(1)), m.group(2)
        if agg in ("stddev", "cv"):
            continue
        ips = b.get("items_per_second")
        if ips is None:
            continue
        ips = float(ips)
        if cap not in best or ips > best[cap]:
            best[cap] = ips
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-ratio", type=float, default=0.5)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    best = collect(data.get("benchmarks", []))

    if len(best) < 2:
        print("error: need at least two BM_EngineKleeneClone arms",
              file=sys.stderr)
        return 2

    caps = sorted(best)
    for cap in caps:
        print(f"cap={cap}: {best[cap] / 1e6:.3f}M clones/s")
    short, long_ = caps[0], caps[-1]
    ratio = best[long_] / best[short]
    verdict = "OK" if ratio >= args.min_ratio else "FAIL"
    print(f"clones/s at cap {long_} is {ratio:.2f}x of cap {short} "
          f"(threshold {args.min_ratio:.2f}) [{verdict}]")
    return 0 if ratio >= args.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
