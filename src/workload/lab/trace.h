// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Deterministic trace capture and replay: the adversarial-lab substrate
// that turns any live run — faulted, shedded, sharded — into a
// reproducible regression artifact. A trace file stores the schema, every
// accepted event (type, timestamp, sequence number, attributes), and
// optionally the shard route the router chose, in a compact varint-coded
// binary format guarded by a checksum. Replaying a capture reconstructs
// the exact EventStream (including the original sequence numbers, which
// the shedders and guards hash for drop decisions), so a replayed run is
// bit-for-bit the run that was recorded.
//
// File layout (little-endian):
//   magic   "CEPTRC01"                      8 bytes
//   flags   u32                             bit 0: routes recorded
//                                           bit 1: resize section present
//   count   u64                             events (patched on Close)
//   check   u64                             FNV-1a of the event section
//                                           (patched on Close)
//   schema  u32 type count, then per type   varint len + name bytes
//           u32 attr count, then per attr   u8 ValueType, varint len + name
//   events  per event:
//           varint type, zigzag-varint timestamp, varint seq,
//           varint attr count, per attr u8 tag + payload
//           (int: zigzag varint; double: 8 raw bytes; string: varint len +
//           bytes; null: tag only);
//           if routes: varint route count + varint shard ids
//   resizes (only with bit 1) varint count, then per resize:
//           varint seq, varint old_shards, varint new_shards
//
// The resize section records every elastic resize the runtime executed
// (src/runtime/shard_runtime.h ResizeTap), in stream order: at the event
// with sequence number `seq` the live shard count changed old -> new. A
// dynamically scaled run is load-dependent, so replay re-applies the
// recorded schedule as scripted `resize` fault anchors
// (ResizeScheduleSpec), which makes the replay bit-for-bit deterministic.
// The checksum spans events and resizes, so a capture with a corrupt
// resize tail is rejected like any other corruption.
//
// A reader that sees a count/checksum mismatch fails loudly: a truncated
// capture (e.g. a crashed recorder that never reached Close) must never
// masquerade as a shorter, valid run.

#ifndef CEPSHED_WORKLOAD_LAB_TRACE_H_
#define CEPSHED_WORKLOAD_LAB_TRACE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/cep/stream.h"
#include "src/common/result.h"

namespace cepshed {
namespace lab {

/// \brief One recorded elastic resize: at the event with stream sequence
/// number `seq` the live shard count changed from `old_shards` to
/// `new_shards`.
struct TraceResize {
  uint64_t seq = 0;
  int old_shards = 0;
  int new_shards = 0;
  bool operator==(const TraceResize&) const = default;
};

/// \brief A fully materialized trace: its own schema copy, the event
/// stream over it, and (when recorded) the router's shard targets per
/// event. The schema lives on the heap so TraceData can move without
/// invalidating the stream's schema pointer.
struct TraceData {
  std::unique_ptr<Schema> schema;
  EventStream stream;
  /// routes[i] = shard targets of stream[i]; empty when not recorded.
  std::vector<std::vector<int>> routes;
  /// Elastic resizes executed by the recorded run, in stream order; empty
  /// when none happened (or the capture predates the resize section).
  std::vector<TraceResize> resizes;

  explicit TraceData(std::unique_ptr<Schema> s)
      : schema(std::move(s)), stream(schema.get()) {}
  TraceData(TraceData&&) = default;
  TraceData& operator=(TraceData&&) = default;
};

/// \brief Streaming trace recorder. Open writes the header with a zero
/// count/checksum; Append streams events; Close patches the header. A
/// writer destroyed without Close leaves the placeholder zeros in place,
/// so the reader rejects the file — incomplete captures fail loudly.
class TraceWriter {
 public:
  /// Creates the file and writes the header. `with_routes` must match the
  /// Append overload used afterwards.
  static Result<std::unique_ptr<TraceWriter>> Open(const std::string& path,
                                                   const Schema& schema,
                                                   bool with_routes = false);

  /// Appends one event (routes must not have been requested at Open).
  Status Append(const Event& event);
  /// Appends one event with the router's shard targets.
  Status Append(const Event& event, const std::vector<int>& route);

  /// Buffers one executed elastic resize (the ShardRuntimeOptions
  /// resize_tap feeds this). The section is written — and the resize flag
  /// set — on Close, so event bytes stay contiguous; recording nothing
  /// leaves the file identical to a pre-resize-format capture.
  void RecordResize(uint64_t seq, int old_shards, int new_shards);

  /// Writes the buffered resize section (if any), patches the flags,
  /// event count, and checksum into the header, and closes the file.
  /// Idempotent; required for the file to be readable.
  Status Close();

  uint64_t num_events() const { return num_events_; }

  ~TraceWriter();

 private:
  TraceWriter() = default;

  Status AppendSerialized(const std::string& body);

  std::fstream file_;
  std::string path_;
  bool with_routes_ = false;
  bool closed_ = false;
  uint64_t num_events_ = 0;
  uint64_t checksum_ = 0;  // running FNV-1a over the event section
  std::vector<TraceResize> resizes_;
};

/// Reads a trace. With `max_events` > 0 only that prefix is materialized
/// (trace minimization: bisect a failing capture by shrinking the prefix);
/// the checksum is then only verified when the prefix covers the whole
/// file, since it spans the full event section.
Result<TraceData> ReadTrace(const std::string& path, size_t max_events = 0);

/// Convenience: records a whole in-memory stream (no routes) as a trace.
Status WriteTrace(const EventStream& stream, const std::string& path);

/// Renders recorded resizes as scripted fault-DSL anchors
/// ("resize:at=<seq>,delta=<d>;...") that re-apply the recorded scale
/// schedule on replay (src/fault/fault_injector.h). Empty for no resizes;
/// append to the run's fault spec with a ';' separator.
std::string ResizeScheduleSpec(const std::vector<TraceResize>& resizes);

}  // namespace lab
}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_LAB_TRACE_H_
