// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The shedding controller: drives one stream through an engine under a
// shedding strategy, measuring per-event latency with the LatencyMonitor
// and exposing the run's raw outcome. This is the runtime realization of
// the paper's model f_Q(rho_I(S(k+1)), rho_S(P(k))).

#ifndef CEPSHED_SHED_CONTROLLER_H_
#define CEPSHED_SHED_CONTROLLER_H_

#include <vector>

#include "src/cep/engine.h"
#include "src/cep/stream.h"
#include "src/runtime/latency_monitor.h"
#include "src/shed/shedder.h"

namespace cepshed {

/// \brief Raw outcome of one stream run.
struct RunResult {
  std::vector<Match> matches;
  uint64_t total_events = 0;
  uint64_t dropped_events = 0;
  uint64_t processed_events = 0;
  uint64_t shed_pms = 0;
  uint64_t pms_created = 0;
  /// Overall average per-event latency in cost units.
  double avg_latency = 0.0;
  /// Exact percentiles over all per-event latencies of this run.
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  /// Wall-clock duration of the run.
  double wall_seconds = 0.0;
  /// Events (after a monitor-window warmup) whose smoothed latency
  /// exceeded the strategy's bound, and the total events counted.
  uint64_t bound_violations = 0;
  uint64_t bound_checked = 0;
  /// Sampled live partial-match counts (when sampling was requested).
  std::vector<size_t> pm_series;
  size_t pm_series_stride = 0;
  EngineStats engine_stats;
};

/// \brief Runs a stream through engine + shedder with latency monitoring.
class ShedRunner {
 public:
  /// The engine and shedder must outlive the runner. The shedder is bound
  /// to the engine here.
  ShedRunner(Engine* engine, Shedder* shedder, LatencyMonitor::Options latency_options);

  /// Processes the whole stream. `pm_sample_stride` > 0 samples the live
  /// partial-match count every that-many events (Fig. 1's series).
  RunResult Run(const EventStream& stream, size_t pm_sample_stride = 0);

  /// Work charged to the latency monitor for a dropped event ("a discarded
  /// event is not processed at all" — only the filter runs).
  static constexpr double kDroppedEventCost = 0.05;

  /// Attaches an observability sink (optional; not owned): the runner then
  /// records per-event counters and the cost histogram, and wires the sink
  /// into the shedder's drop/kill audit hooks.
  void set_obs(obs::ShardObs* o) { obs_ = o; }

 private:
  Engine* engine_;
  Shedder* shedder_;
  LatencyMonitor::Options latency_options_;
  obs::ShardObs* obs_ = nullptr;
};

}  // namespace cepshed

#endif  // CEPSHED_SHED_CONTROLLER_H_
