// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/ds1.h"

namespace cepshed {

Schema MakeDs1Schema() {
  Schema schema;
  for (const char* t : {"A", "B", "C", "D"}) {
    auto r = schema.AddEventType(t);
    (void)r;
  }
  auto r1 = schema.AddAttribute("ID", ValueType::kInt);
  auto r2 = schema.AddAttribute("V", ValueType::kInt);
  (void)r1;
  (void)r2;
  return schema;
}

EventStream GenerateDs1(const Schema& schema, const Ds1Options& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  const int c_type = schema.EventTypeId("C");
  const std::vector<double> weights(options.type_weights, options.type_weights + 4);

  for (size_t i = 0; i < options.num_events; ++i) {
    const int type = static_cast<int>(rng.Categorical(weights));
    int v_lo = options.v_min;
    int v_hi = options.v_max;
    if (type == c_type) {
      if (options.flip_at > 0 && i >= options.flip_at) {
        v_lo = options.c_v_min2;
        v_hi = options.c_v_max2;
      } else if (options.c_v_min >= 0) {
        v_lo = options.c_v_min;
        v_hi = options.c_v_max;
      }
    }
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(rng.UniformInt(1, options.num_ids));
    attrs[static_cast<size_t>(v_attr)] = Value(rng.UniformInt(v_lo, v_hi));
    const Timestamp ts = static_cast<Timestamp>(i) * options.event_gap;
    Status st = stream.Emit(type, ts, std::move(attrs));
    (void)st;
  }
  return stream;
}

Result<EventStream> LoadDs1Csv(const Schema& schema, const std::string& path,
                               CsvReadStats* stats) {
  CsvReadOptions options;
  options.lenient = true;
  return ReadCsvFile(schema, path, options, stats);
}


}  // namespace cepshed
