// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/fault/fault_injector.h"

#include <cstdlib>
#include <sstream>

namespace cepshed {

namespace {

Result<FaultKind> ParseKind(const std::string& name) {
  if (name == "stall") return FaultKind::kStall;
  if (name == "slow") return FaultKind::kSlowdown;
  if (name == "burst") return FaultKind::kBurst;
  if (name == "saturate") return FaultKind::kSaturate;
  if (name == "skew") return FaultKind::kSkew;
  if (name == "death") return FaultKind::kDeath;
  if (name == "resize") return FaultKind::kResize;
  return Status::ParseError("unknown fault kind '" + name + "'");
}

Result<int64_t> ParseInt(const std::string& entry, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::ParseError("fault entry '" + entry + "': bad integer '" + value +
                              "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& entry, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::ParseError("fault entry '" + entry + "': bad number '" + value +
                              "'");
  }
  return v;
}

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

/// Parses one `kind:key=value,...` entry (already trimmed, non-empty).
Result<FaultSpec> ParseEntry(const std::string& entry) {
  const size_t colon = entry.find(':');
  FaultSpec fault;
  const std::string kind_name = entry.substr(0, colon);
  CEPSHED_ASSIGN_OR_RETURN(fault.kind, ParseKind(kind_name));

  if (colon != std::string::npos) {
    std::istringstream pairs(entry.substr(colon + 1));
    std::string pair;
    while (std::getline(pairs, pair, ',')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("fault entry '" + entry +
                                  "': expected key=value, got '" + pair + "'");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "shard") {
        int64_t v;
        CEPSHED_ASSIGN_OR_RETURN(v, ParseInt(entry, value));
        fault.shard = static_cast<int>(v);
      } else if (key == "at") {
        int64_t v;
        CEPSHED_ASSIGN_OR_RETURN(v, ParseInt(entry, value));
        if (v < 0) {
          return Status::ParseError("fault entry '" + entry + "': at must be >= 0");
        }
        fault.at = static_cast<uint64_t>(v);
      } else if (key == "count") {
        int64_t v;
        CEPSHED_ASSIGN_OR_RETURN(v, ParseInt(entry, value));
        if (v <= 0) {
          return Status::ParseError("fault entry '" + entry + "': count must be > 0");
        }
        fault.count = static_cast<uint64_t>(v);
      } else if (key == "us") {
        CEPSHED_ASSIGN_OR_RETURN(fault.micros, ParseInt(entry, value));
      } else if (key == "ms") {
        int64_t v;
        CEPSHED_ASSIGN_OR_RETURN(v, ParseInt(entry, value));
        fault.micros = v * 1000;
      } else if (key == "factor") {
        CEPSHED_ASSIGN_OR_RETURN(fault.factor, ParseDouble(entry, value));
        if (fault.factor <= 0.0) {
          return Status::ParseError("fault entry '" + entry + "': factor must be > 0");
        }
      } else if (key == "delta") {
        int64_t v;
        CEPSHED_ASSIGN_OR_RETURN(v, ParseInt(entry, value));
        fault.delta = static_cast<int>(v);
      } else {
        return Status::ParseError("fault entry '" + entry + "': unknown key '" + key +
                                  "'");
      }
    }
  }

  switch (fault.kind) {
    case FaultKind::kStall:
    case FaultKind::kSlowdown:
      if (fault.micros < 0) {
        return Status::ParseError("fault entry '" + entry +
                                  "': sleep duration must be >= 0");
      }
      break;
    case FaultKind::kBurst:
      if (fault.factor == 1.0) {
        return Status::ParseError("fault entry '" + entry +
                                  "': burst needs factor != 1");
      }
      break;
    case FaultKind::kResize:
      if (fault.delta == 0) {
        return Status::ParseError("fault entry '" + entry +
                                  "': resize needs delta != 0");
      }
      break;
    case FaultKind::kSaturate:
    case FaultKind::kSkew:
    case FaultKind::kDeath:
      break;
  }
  return fault;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kSlowdown:
      return "slow";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kSaturate:
      return "saturate";
    case FaultKind::kSkew:
      return "skew";
    case FaultKind::kDeath:
      return "death";
    case FaultKind::kResize:
      return "resize";
  }
  return "unknown";
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec, uint64_t seed) {
  FaultInjector injector;
  injector.seed_ = seed;
  // Entries split on ';' and on newlines; multi-line schedules (e.g. read
  // from a file) report errors by 1-based line number.
  int line = 1;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find_first_of(";\n", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = Trim(spec.substr(pos, end - pos));
    if (!entry.empty()) {
      Result<FaultSpec> fault = ParseEntry(entry);
      if (!fault.ok()) {
        return Status::ParseError("line " + std::to_string(line) + ": " +
                                  fault.status().message());
      }
      // Two entries of one kind at one (shard, at) anchor are either a
      // duplicate or a contradiction; last-wins or double-application
      // would silently change the experiment, so fail loudly instead.
      for (const FaultSpec& prior : injector.specs_) {
        if (prior.kind == fault->kind && prior.shard == fault->shard &&
            prior.at == fault->at) {
          return Status::ParseError(
              "line " + std::to_string(line) + ": fault entry '" + entry +
              "': duplicate " + std::string(FaultKindName(fault->kind)) +
              " anchor at shard=" + std::to_string(fault->shard) +
              ",at=" + std::to_string(fault->at));
        }
      }
      injector.specs_.push_back(*fault);
    }
    if (end == spec.size()) break;
    if (spec[end] == '\n') ++line;
    pos = end + 1;
  }
  return injector;
}

ActiveFaults FaultInjector::OnConsume(int shard, uint64_t index) const {
  ActiveFaults active;
  for (const FaultSpec& f : specs_) {
    if (f.shard != -1 && f.shard != shard) continue;
    switch (f.kind) {
      case FaultKind::kStall:
        if (index == f.at) active.stall_us += f.micros;
        break;
      case FaultKind::kSlowdown:
        if (index >= f.at && index < f.at + f.count) active.stall_us += f.micros;
        break;
      case FaultKind::kBurst:
        if (index >= f.at && index < f.at + f.count) {
          active.cost_multiplier *= f.factor;
        }
        break;
      case FaultKind::kSkew:
        if (index >= f.at && index < f.at + f.count) {
          active.clock_skew_us += f.micros;
        }
        break;
      case FaultKind::kDeath:
        if (index == f.at) active.die = true;
        break;
      case FaultKind::kSaturate:
      case FaultKind::kResize:
        break;  // router-side
    }
  }
  return active;
}

bool FaultInjector::SaturatePush(int shard, uint64_t seq) const {
  for (const FaultSpec& f : specs_) {
    if (f.kind != FaultKind::kSaturate) continue;
    if (f.shard != -1 && f.shard != shard) continue;
    if (seq >= f.at && seq < f.at + f.count) return true;
  }
  return false;
}

std::string FaultInjector::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& f = specs_[i];
    if (i > 0) out << ";";
    out << FaultKindName(f.kind) << ":shard=" << f.shard << ",at=" << f.at;
    if (f.kind == FaultKind::kSlowdown || f.kind == FaultKind::kBurst ||
        f.kind == FaultKind::kSaturate || f.kind == FaultKind::kSkew) {
      out << ",count=" << f.count;
    }
    if (f.kind == FaultKind::kStall || f.kind == FaultKind::kSlowdown ||
        f.kind == FaultKind::kSkew) {
      out << ",us=" << f.micros;
    }
    if (f.kind == FaultKind::kBurst) out << ",factor=" << f.factor;
    if (f.kind == FaultKind::kResize) out << ",delta=" << f.delta;
  }
  return out.str();
}

}  // namespace cepshed
