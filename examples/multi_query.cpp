// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Multi-query example: two queries with different importance share one
// latency budget; the weighted split steers which query keeps its recall
// when the budget tightens (the multi-query setting of the related work
// the paper discusses in §VII).
//
//   $ ./examples/multi_query

#include <cstdio>

#include "src/runtime/multi_query.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

using namespace cepshed;

int main() {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 15000;
  gen.seed = 21;
  const EventStream train = GenerateDs1(schema, gen);
  gen.seed = 22;
  const EventStream live = GenerateDs1(schema, gen);

  // A latency-critical fraud query (weight 4) sharing the host with a
  // best-effort analytics query (weight 1).
  std::vector<WeightedQuery> workload = {
      {*queries::Q1("8ms"), /*weight=*/4.0},
      {*queries::Q2(2, "2ms"), /*weight=*/1.0},
  };

  MultiQueryRunner runner(&schema, workload);
  if (Status st = runner.Prepare(train); !st.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", st.ToString().c_str());
    return 1;
  }

  auto full = runner.Run(live, /*theta=*/0.0);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  std::printf("Exhaustive: total %.0f cost units/event\n", full->total_avg_latency);
  for (const auto& q : full->queries) {
    std::printf("  %-4s %zu matches, %.0f units/event\n", q.name.c_str(),
                q.matches.size(), q.avg_latency);
  }

  const double budget = 0.5 * full->total_avg_latency;
  auto shed = runner.Run(live, budget);
  if (!shed.ok()) {
    std::fprintf(stderr, "%s\n", shed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nShared budget %.0f units/event (50%%):\n", budget);
  for (size_t q = 0; q < shed->queries.size(); ++q) {
    const auto& r = shed->queries[q];
    const double recall = full->queries[q].matches.empty()
                              ? 1.0
                              : static_cast<double>(r.matches.size()) /
                                    static_cast<double>(full->queries[q].matches.size());
    std::printf("  %-4s ~%.0f%% of matches kept, %.0f units/event, dropped %llu, "
                "shed %llu\n",
                r.name.c_str(), 100.0 * recall, r.avg_latency,
                static_cast<unsigned long long>(r.dropped_events),
                static_cast<unsigned long long>(r.shed_pms));
  }
  std::printf("\nThe weighted split protects the critical query: raise a query's\n"
              "weight and it keeps more of its matches under the same budget.\n");
  return 0;
}
