// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The query model: a SEQ pattern of (possibly Kleene-closed or negated)
// typed elements, a conjunction of WHERE predicates, and a WITHIN window —
// the query class the paper targets (§III-A), evaluated under the
// exhaustive skip-till-any-match selection policy.

#ifndef CEPSHED_CEP_PATTERN_H_
#define CEPSHED_CEP_PATTERN_H_

#include <climits>
#include <string>
#include <vector>

#include "src/cep/expr.h"
#include "src/cep/schema.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace cepshed {

/// \brief Event selection policy of a query (§III-A of the paper).
///
/// Exhaustive skip-till-any-match is the paper's default (and the policy
/// under which the monotonicity properties that make shedding safe hold);
/// the selective policies are provided for completeness — the paper names
/// them as non-monotonic counter-examples: under them, shedding can
/// *create* matches that exhaustive evaluation would not produce.
enum class SelectionPolicy : int {
  kSkipTillAnyMatch = 0,  ///< clone on every viable extension (exhaustive)
  kSkipTillNextMatch = 1, ///< each partial match takes the first viable event
  kStrictContiguity = 2,  ///< pattern events must be stream-adjacent
};

/// \brief One component of a SEQ pattern.
struct PatternElement {
  /// The variable the component binds (e.g. "a"); unique within a query.
  std::string variable;
  /// Event type name; resolved to an id during compilation.
  std::string event_type;
  /// Resolved event type id (set by Query::Validate / NFA compilation).
  int event_type_id = -1;
  /// True for Kleene closure components (`A+ a[]`).
  bool kleene = false;
  /// True for negated components (`!B b`); these veto matches.
  bool negated = false;
  /// Minimum repetitions for Kleene components (>= 1).
  int min_reps = 1;
  /// Maximum repetitions for Kleene components.
  int max_reps = INT_MAX;
};

/// \brief A complete CEP query: pattern, predicates, window.
struct Query {
  std::string name;
  std::vector<PatternElement> elements;
  /// WHERE conjuncts. Each predicate is attached to the pattern position
  /// where it becomes fully bound during NFA compilation.
  std::vector<ExprPtr> predicates;
  /// WITHIN window in microseconds.
  Duration window = 0;
  /// When > 0, the window counts *events* instead of time: a match may
  /// span at most this many stream positions (the paper's Fig. 12 uses
  /// "1K/2K/4K/8K events" windows). `window` must still be positive and
  /// is used for the cost model's time slices.
  uint64_t count_window = 0;
  /// Event selection policy (POLICY clause; defaults to the exhaustive
  /// skip-till-any-match).
  SelectionPolicy policy = SelectionPolicy::kSkipTillAnyMatch;

  /// Structural validation and name resolution: unique variables, known
  /// event types, window > 0, Kleene bounds sane, negated components not
  /// at the pattern edges, predicates resolvable. Resolves all predicates
  /// against `schema` (idempotent per predicate: call once).
  Status Validate(const Schema& schema);

  /// Index of the element binding `variable`, or -1.
  int ElemIndex(const std::string& variable) const;

  /// Number of non-negated components.
  int NumPositiveElements() const;

  /// Maps a pattern element index to its positive slot (events storage
  /// index) or -1 for negated components.
  std::vector<int> PositiveSlots() const;

  /// Renders the query in a SASE-like syntax for diagnostics.
  std::string ToString() const;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_PATTERN_H_
