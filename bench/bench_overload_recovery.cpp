// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Overload-recovery benchmark: DS1/Q1 through the sharded runtime while a
// deterministic fault schedule applies pressure, with and without the
// overload guard. Three scenarios per shard count:
//
//   clean      no faults, guard off — the throughput/recall reference
//   burst      a 40x cost burst mid-stream; guard on with a latency bound:
//              measures what shedding costs in recall and buys in wall
//              time, and whether the guard returns to normal
//   death      a worker death mid-stream (restart budget 1): measures the
//              recovery overhead and the bounded loss of the restart path
//
// Columns: scenario,shards,wall_s,eps,matches,recall,lost,guard_drops,
// trims+evictions,restarts,final_level. Recall is against the clean run of
// the same shard count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/cep/nfa.h"
#include "src/fault/fault_injector.h"
#include "src/runtime/shard_runtime.h"

namespace cepshed {
namespace {

struct Row {
  double wall_s = 0.0;
  double eps = 0.0;
  size_t matches = 0;
  uint64_t lost = 0;
  uint64_t guard_drops = 0;
  uint64_t guard_state_kills = 0;
  uint64_t restarts = 0;
  int final_level = 0;
};

Row RunOnce(const std::shared_ptr<const Nfa>& nfa, const EventStream& stream,
            const ShardRuntimeOptions& opts) {
  auto runtime = ShardRuntime::Create(nfa, opts);
  if (!runtime.ok()) {
    std::fprintf(stderr, "create: %s\n", runtime.status().ToString().c_str());
    std::abort();
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto result = (*runtime)->Run(stream);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  Row row;
  row.wall_s = secs;
  row.eps = static_cast<double>(stream.size()) / secs;
  row.matches = result->matches.size();
  row.lost = result->lost_events;
  row.guard_drops = result->guard_input_drops;
  row.guard_state_kills = result->guard_trims + result->guard_evictions;
  row.restarts = result->worker_restarts;
  for (const ShardResult& s : result->shards) {
    row.final_level = std::max(row.final_level, s.guard_final_level);
  }
  return row;
}

void Print(const char* scenario, int shards, const Row& row, size_t clean_matches) {
  const double recall =
      clean_matches > 0
          ? static_cast<double>(row.matches) / static_cast<double>(clean_matches)
          : 1.0;
  std::printf("%s,%d,%.3f,%.0f,%zu,%.3f,%llu,%llu,%llu,%llu,%s\n", scenario, shards,
              row.wall_s, row.eps, row.matches, recall,
              static_cast<unsigned long long>(row.lost),
              static_cast<unsigned long long>(row.guard_drops),
              static_cast<unsigned long long>(row.guard_state_kills),
              static_cast<unsigned long long>(row.restarts),
              GuardLevelName(static_cast<GuardLevel>(row.final_level)));
}

}  // namespace
}  // namespace cepshed

int main() {
  using namespace cepshed;

  Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 60000;
  gen.event_gap = 10;
  gen.seed = 7;
  const EventStream stream = GenerateDs1(schema, gen);

  auto query = queries::Q1();
  if (!query.ok()) std::abort();
  auto nfa = Nfa::Compile(*query, &schema);
  if (!nfa.ok()) std::abort();

  auto burst_faults =
      FaultInjector::Parse("burst:at=20000,count=10000,factor=40", 7);
  auto death_faults = FaultInjector::Parse("death:shard=0,at=10000", 7);
  if (!burst_faults.ok() || !death_faults.ok()) std::abort();

  bench::Header("Overload recovery", "DS1/Q1, 60k events, hash routing on ID",
                "scenario,shards,wall_s,eps,matches,recall,lost,guard_drops,"
                "state_kills,restarts,final_level");

  for (const int shards : {1, 2, 4}) {
    ShardRuntimeOptions base;
    base.num_shards = shards;
    base.partition_attr = schema.AttributeIndex("ID");

    const Row clean = RunOnce(*nfa, stream, base);
    Print("clean", shards, clean, clean.matches);

    // Guard bound: twice the clean run's steady per-event cost.
    double clean_mu = 0.0;
    {
      auto runtime = ShardRuntime::Create(*nfa, base);
      auto r = (*runtime)->Run(stream);
      for (const ShardResult& s : r->shards) clean_mu = std::max(clean_mu, s.avg_latency);
    }

    ShardRuntimeOptions burst = base;
    burst.faults = &*burst_faults;
    burst.guard.enabled = true;
    burst.guard.theta = 2.0 * clean_mu;
    burst.latency.window = 256;
    Print("burst", shards, RunOnce(*nfa, stream, burst), clean.matches);

    ShardRuntimeOptions death = base;
    death.faults = &*death_faults;
    death.max_worker_restarts = 1;
    Print("death", shards, RunOnce(*nfa, stream, death), clean.matches);
  }
  return 0;
}
