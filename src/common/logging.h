// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Minimal leveled logging to stderr. Quiet by default so that benchmark
// output stays machine-readable; raise the level for debugging.

#ifndef CEPSHED_COMMON_LOGGING_H_
#define CEPSHED_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cepshed {

/// \brief Log severity levels, ordered by verbosity.
enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Sets the global log threshold; messages above it are suppressed.
void SetLogLevel(LogLevel level);
/// Returns the global log threshold.
LogLevel GetLogLevel();
/// Emits one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-style log line builder; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal

#define CEPSHED_LOG(level) ::cepshed::internal::LogLine(::cepshed::LogLevel::level)

}  // namespace cepshed

#endif  // CEPSHED_COMMON_LOGGING_H_
