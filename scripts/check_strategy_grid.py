#!/usr/bin/env python3
"""CI gate over BENCH_strategies.json (bench_strategy_grid output).

Checks what the learned shedders promise rather than raw throughput (CI
machines are too noisy for absolute numbers):

  * completeness — every (dataset, bound) cell carries all seven
    strategies, with recall/precision in [0, 1];
  * shedding happened — under every bound each strategy actually shed
    (events or partial matches), i.e. the registry wired a live shedder
    and not a no-op;
  * learning pays — hSPICE beats RI on recall, and pSPICE beats RS, at an
    equal bound on at least one dataset each (by a configurable margin).
    These are the informed/blind pairs: hSPICE drops events by learned
    per-(type, state) utility where RI drops uniformly at random, and
    pSPICE kills partial matches by predicted completion probability
    where RS kills uniformly at random.

Usage: check_strategy_grid.py [BENCH_strategies.json] [--min-margin M]
"""

import argparse
import json
import sys

STRATEGIES = ("ri", "si", "rs", "ss", "hybrid", "hspice", "pspice")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", nargs="?", default="BENCH_strategies.json")
    ap.add_argument("--min-margin", type=float, default=0.0,
                    help="required recall advantage of the learned shedder")
    args = ap.parse_args()

    with open(args.report) as f:
        data = json.load(f)
    datasets = data["datasets"]

    failures = []
    hspice_wins = []
    pspice_wins = []

    for ds_name, bounds in datasets.items():
        if not bounds:
            failures.append(f"{ds_name}: no bounds recorded")
        for bound, cells in bounds.items():
            for strat in STRATEGIES:
                if strat not in cells:
                    failures.append(f"{ds_name}@{bound}: missing {strat}")
                    continue
                cell = cells[strat]
                for metric in ("recall", "precision"):
                    v = cell[metric]
                    if not 0.0 <= v <= 1.0:
                        failures.append(
                            f"{ds_name}@{bound}/{strat}: {metric}={v} "
                            f"outside [0, 1]")
                if cell["shed_event_ratio"] <= 0 and cell["shed_pm_ratio"] <= 0:
                    failures.append(
                        f"{ds_name}@{bound}/{strat}: shed nothing — "
                        f"registry wired a no-op?")
            if any(s not in cells for s in STRATEGIES):
                continue
            h_delta = cells["hspice"]["recall"] - cells["ri"]["recall"]
            p_delta = cells["pspice"]["recall"] - cells["rs"]["recall"]
            if h_delta > args.min_margin:
                hspice_wins.append(f"{ds_name}@{bound} (+{h_delta:.4f})")
            if p_delta > args.min_margin:
                pspice_wins.append(f"{ds_name}@{bound} (+{p_delta:.4f})")

    if not hspice_wins:
        failures.append(
            "hSPICE never beat RI on recall at an equal bound — the learned "
            "input shedder is not paying for its utility table")
    if not pspice_wins:
        failures.append(
            "pSPICE never beat RS on recall at an equal bound — the learned "
            "state shedder is not paying for its completion model")

    for f_ in failures:
        print(f"FAIL: {f_}")
    if not failures:
        print(f"OK: {len(datasets)} datasets; hSPICE > RI on "
              f"{len(hspice_wins)} cells ({', '.join(hspice_wins)}); "
              f"pSPICE > RS on {len(pspice_wins)} cells "
              f"({', '.join(pspice_wins)})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
