// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Memory-mapped CSV trace reader: the zero-copy ingest path. The whole
// file is mapped read-only and parsed in place through CsvCursor /
// CsvRowSplitter — no per-row read syscalls, line copies, or cell-string
// allocations. NextBatch hands out events in batches sized for the
// runtime's batched queues, so a caller can stream a multi-gigabyte trace
// without materializing the stream. ReadCsvMappedFile is the whole-file
// convenience wrapper, differential-tested to produce a stream identical
// to ReadCsvFile's (same events, seq numbers, and lenient-mode skips).

#ifndef CEPSHED_WORKLOAD_CSV_MMAP_H_
#define CEPSHED_WORKLOAD_CSV_MMAP_H_

#include <string>
#include <vector>

#include "src/cep/stream.h"
#include "src/common/result.h"
#include "src/util/file_mapping.h"
#include "src/workload/csv.h"
#include "src/workload/csv_cursor.h"

namespace cepshed {

/// \brief Streaming reader over a memory-mapped CSV trace.
///
/// Mirrors ReadCsv's semantics exactly: the header is validated against
/// the schema up front (hard error in both modes); malformed rows —
/// including timestamp regressions, which EventStream::Emit would reject —
/// fail a strict read or are counted and skipped in lenient mode; events
/// are numbered consecutively from 0 in acceptance order.
class MappedCsvReader {
 public:
  /// Maps `path` and validates its header.
  static Result<MappedCsvReader> Open(const Schema& schema,
                                      const std::string& path,
                                      CsvReadOptions options = {});

  /// Parses up to `max_events` further rows, appending the resulting
  /// events to *out. Returns the number appended; 0 means end of file.
  /// In strict mode the first malformed row fails the call.
  Result<size_t> NextBatch(size_t max_events, std::vector<EventPtr>* out);

  /// True once the cursor has consumed the whole file.
  bool done() const { return done_; }

  const CsvReadStats& stats() const { return stats_; }
  const Schema& schema() const { return *schema_; }

 private:
  MappedCsvReader(const Schema& schema, FileMapping map,
                  CsvReadOptions options)
      : schema_(&schema), map_(std::move(map)), cursor_(map_.view()),
        options_(options) {}

  const Schema* schema_ = nullptr;
  FileMapping map_;
  CsvCursor cursor_;  // views into map_; survives moves of *this
  CsvRowSplitter splitter_;
  std::vector<std::string_view> cells_;
  CsvReadOptions options_;
  CsvReadStats stats_;
  size_t expected_cells_ = 0;
  Timestamp last_ts_ = 0;
  bool have_last_ = false;
  bool done_ = false;
  uint64_t next_seq_ = 0;
};

/// Reads a whole CSV file through the mapped reader. Produces the same
/// stream ReadCsvFile would. `stats` may be null.
Result<EventStream> ReadCsvMappedFile(const Schema& schema,
                                      const std::string& path,
                                      const CsvReadOptions& options = {},
                                      CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_CSV_MMAP_H_
