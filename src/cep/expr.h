// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Predicate expressions of the WHERE clause: arithmetic, comparisons,
// boolean connectives, sqrt, set membership, and aggregates over Kleene
// bindings. Expressions are built by the query parser (or programmatically),
// resolved against a pattern + schema once, and then evaluated millions of
// times during matching.

#ifndef CEPSHED_CEP_EXPR_H_
#define CEPSHED_CEP_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cep/event.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace cepshed {

struct PatternElement;  // pattern.h

/// Abstract work units per predicate node evaluation; sqrt is deliberately
/// expensive so that queries like the paper's Q3 exhibit heterogeneous
/// resource costs (§IV-A). Shared by the tree interpreter (Expr::Eval) and
/// the bytecode VM (pred_vm.h), which must charge identical units.
inline constexpr double kExprCostBasic = 1.0;
inline constexpr double kExprCostSqrt = 5.0;

/// \brief Expression node kinds.
enum class ExprKind : int {
  kLiteral,    ///< constant Value
  kAttrRef,    ///< var[.selector].attr reference to a bound event
  kBinary,     ///< arithmetic: + - * / %
  kCompare,    ///< comparison: = != < <= > >=
  kAnd,        ///< logical and (n-ary)
  kOr,         ///< logical or (n-ary)
  kNot,        ///< logical negation
  kFunc,       ///< built-in scalar function (sqrt, abs) or n-ary avg
  kInSet,      ///< value IN {v1, ..., vn}
  kAggregate,  ///< AVG/SUM/MIN/MAX/COUNT over a Kleene element's attribute
};

/// \brief Arithmetic operators.
enum class BinOp : int { kAdd, kSub, kMul, kDiv, kMod };
/// \brief Comparison operators.
enum class CmpOp : int { kEq, kNe, kLt, kLe, kGt, kGe };
/// \brief Built-in scalar functions.
enum class FuncKind : int { kSqrt, kAbs, kAvgN };
/// \brief Aggregates over Kleene bindings.
enum class AggKind : int { kAvg, kSum, kMin, kMax, kCount };

/// \brief Which event of a pattern element an AttrRef selects.
///
/// For the Kleene iteration constraints of the paper's queries:
/// `a[i]` -> kIterPrev (the previously bound event), `a[i+1]` -> kIterCurr
/// (the event being bound), `a[first]`/`a[last]` -> the edges of the
/// binding, plain `a` -> kSingle (non-Kleene variables).
enum class RefSelector : int { kSingle, kIterPrev, kIterCurr, kFirst, kLast };

/// \brief The events bound to one pattern element during evaluation.
///
/// Two forms, distinguished by which fields are set:
///
///  - *Edge form* (`first`/`last`/`prev_last` set, `events` null): what the
///    engine fills on the hot path. Attribute selectors only ever read the
///    first, last, or second-to-last event of a binding, and those are O(1)
///    reachable from a shared-prefix chain — no flatten needed.
///  - *Span form* (`events` set): a contiguous raw-pointer view over all
///    bound events. Required by aggregates (AVG/SUM/... fold the whole
///    binding) and used by callers that already hold a flat array (negation
///    vetoes, tests). Raw pointers, not EventPtr: predicate evaluation must
///    not pay shared_ptr refcount traffic per read.
///
/// The accessors below prefer the edge fields and fall back to the span, so
/// either form evaluates identically.
struct ElemBinding {
  const Event* const* events = nullptr;
  uint32_t count = 0;
  const Event* first = nullptr;
  const Event* last = nullptr;
  /// Second-to-last bound event (only set when count >= 2).
  const Event* prev_last = nullptr;

  const Event* First() const {
    if (first != nullptr) return first;
    return count > 0 ? events[0] : nullptr;
  }
  const Event* Last() const {
    if (last != nullptr) return last;
    return count > 0 ? events[count - 1] : nullptr;
  }
  const Event* PrevLast() const {
    if (count < 2) return First();
    return prev_last != nullptr ? prev_last : events[count - 2];
  }
};

/// \brief Evaluation context assembled by the engine per predicate check.
///
/// `bindings[e]` holds the events already bound to pattern element e.
/// `current` is the event being tested for binding to element
/// `current_elem`. For negation checks, `negated` is the witness event
/// standing in for negated element `negated_elem`.
struct EvalContext {
  static constexpr int kMaxElements = 32;
  ElemBinding bindings[kMaxElements];
  int num_elements = 0;
  const Event* current = nullptr;
  int current_elem = -1;
  const Event* negated = nullptr;
  int negated_elem = -1;
};

/// \brief An immutable-after-resolve expression tree node.
///
/// Build with the static factories, call Resolve() once against the pattern
/// elements and schema, then Eval() freely. Eval also accumulates a cost in
/// abstract work units (sqrt weighs more than an addition), which feeds the
/// engine's latency model and the paper's resource cost Omega.
class Expr {
 public:
  using Ptr = std::shared_ptr<Expr>;

  /// Constant.
  static Ptr Literal(Value v);
  /// Attribute reference `var.attr` with the given selector.
  static Ptr Attr(std::string var, RefSelector selector, std::string attr);
  /// Arithmetic node.
  static Ptr Binary(BinOp op, Ptr lhs, Ptr rhs);
  /// Comparison node.
  static Ptr Compare(CmpOp op, Ptr lhs, Ptr rhs);
  /// Conjunction of two or more children.
  static Ptr And(std::vector<Ptr> children);
  /// Disjunction of two or more children.
  static Ptr Or(std::vector<Ptr> children);
  /// Negation.
  static Ptr Not(Ptr child);
  /// sqrt(x) / abs(x).
  static Ptr Func(FuncKind func, Ptr arg);
  /// Arithmetic mean of two or more scalar children (the paper's Q3 AVG).
  static Ptr AvgN(std::vector<Ptr> children);
  /// Set membership: child IN {values}.
  static Ptr InSet(Ptr child, std::vector<Value> values);
  /// Aggregate over a Kleene element's attribute, e.g. AVG over a[].V.
  static Ptr Aggregate(AggKind agg, std::string var, std::string attr);

  /// Resolves variable and attribute names to pattern-element and schema
  /// indices; validates selector usage. Must be called exactly once before
  /// Eval. `elements` are the pattern elements of the owning query.
  Status Resolve(const std::vector<PatternElement>& elements, const Schema& schema);

  /// Evaluates the expression. Adds the work performed (abstract units) to
  /// *cost if non-null. Null propagates; boolean results are int 0/1.
  Value Eval(const EvalContext& ctx, double* cost) const;

  /// Evaluates as a boolean predicate: non-zero numeric is true, null and
  /// zero are false.
  bool EvalBool(const EvalContext& ctx, double* cost) const;

  /// The largest pattern-element index referenced (including aggregates),
  /// or -1 for constant expressions. Valid after Resolve.
  int MaxElemRef() const;

  /// True iff any node references the given element index.
  bool RefsElem(int elem) const;

  /// True iff any node is an kIterPrev reference to the given element
  /// (such predicates are skipped on the first Kleene iteration).
  bool HasIterPrevRef(int elem) const;

  /// True iff any node in the subtree is an aggregate. Aggregates fold the
  /// whole binding, so the engine must materialize full event spans (the
  /// edge-form EvalContext is not enough) for queries containing them.
  bool HasAggregate() const;

  /// Collects all AttrRef nodes in the subtree (post-Resolve).
  void CollectAttrRefs(std::vector<const Expr*>* out) const;

  /// Deep copy that rewrites AttrRef selectors on the given element from
  /// `from` to `to`. Used by the NFA compiler to turn Kleene iteration
  /// predicates (a[i] refs) into join-index build keys (a[last] refs)
  /// evaluable on a stored partial match without a current event.
  Ptr CloneReplacingSelector(int elem, RefSelector from, RefSelector to) const;

  /// Static work units of one evaluation of this subtree (upper bound used
  /// by the resource-cost mode of the cost model).
  double StaticCost() const;

  /// Renders the expression for diagnostics.
  std::string ToString() const;

  /// Node kind.
  ExprKind kind() const { return kind_; }
  /// Resolved pattern-element index (kAttrRef / kAggregate nodes).
  int elem_index() const { return elem_index_; }
  /// Resolved schema attribute index (kAttrRef / kAggregate nodes).
  int attr_index() const { return attr_index_; }
  /// Reference selector (kAttrRef nodes).
  RefSelector selector() const { return selector_; }
  /// Comparison operator (kCompare nodes).
  CmpOp cmp_op() const { return cmp_op_; }
  /// Arithmetic operator (kBinary nodes).
  BinOp bin_op() const { return bin_op_; }
  /// Built-in function (kFunc nodes).
  FuncKind func() const { return func_; }
  /// Aggregate kind (kAggregate nodes).
  AggKind agg() const { return agg_; }
  /// Constant payload (kLiteral nodes).
  const Value& literal() const { return literal_; }
  /// Membership set (kInSet nodes).
  const std::vector<Value>& set_values() const { return set_values_; }
  /// Children.
  const std::vector<Ptr>& children() const { return children_; }

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  Value EvalAttr(const EvalContext& ctx) const;
  Value EvalAggregate(const EvalContext& ctx, double* cost) const;

  ExprKind kind_;
  Value literal_;
  std::string var_name_;
  std::string attr_name_;
  RefSelector selector_ = RefSelector::kSingle;
  int elem_index_ = -1;
  int attr_index_ = -1;
  BinOp bin_op_ = BinOp::kAdd;
  CmpOp cmp_op_ = CmpOp::kEq;
  FuncKind func_ = FuncKind::kSqrt;
  AggKind agg_ = AggKind::kAvg;
  std::vector<Ptr> children_;
  std::vector<Value> set_values_;
  bool resolved_ = false;
};

using ExprPtr = Expr::Ptr;

}  // namespace cepshed

#endif  // CEPSHED_CEP_EXPR_H_
