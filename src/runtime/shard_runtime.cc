// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/shard_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "src/runtime/ring_queue.h"
#include "src/shed/controller.h"

namespace cepshed {

namespace {

/// SplitMix64 finalizer: decorrelates Value::Hash before the modulo so
/// that consecutive integer keys spread over all shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Flattens top-level conjunctions into individual predicates.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : e->children()) FlattenConjuncts(c.get(), out);
  } else {
    out->push_back(e);
  }
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  }
  int Find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent[static_cast<size_t>(Find(a))] = Find(b); }
};

void SumStats(const EngineStats& in, EngineStats* out) {
  out->events_processed += in.events_processed;
  out->pms_created += in.pms_created;
  out->witnesses_created += in.witnesses_created;
  out->matches_emitted += in.matches_emitted;
  out->matches_vetoed += in.matches_vetoed;
  out->pms_evicted += in.pms_evicted;
  out->predicate_evals += in.predicate_evals;
  out->candidates_scanned += in.candidates_scanned;
  out->index_probes += in.index_probes;
  out->peak_pms += in.peak_pms;
  out->total_cost += in.total_cost;
}

}  // namespace

bool ShardRuntime::IsPartitionCorrelated(const Nfa& nfa, int attr) {
  const Query& q = nfa.query();
  const int n = static_cast<int>(q.elements.size());
  if (attr < 0 || n == 0) return false;
  if (n == 1) return true;

  // Equality links on `attr` extracted from the WHERE conjuncts.
  struct Link {
    int e1;
    RefSelector s1;
    int e2;
    RefSelector s2;
  };
  std::vector<Link> links;
  /// Kleene elements whose iterations are chained equal on attr
  /// (a[i+1].K = a[i].K): all bound events share one value.
  std::vector<bool> self_chain(static_cast<size_t>(n), false);

  std::vector<const Expr*> conjuncts;
  for (const ExprPtr& p : q.predicates) FlattenConjuncts(p.get(), &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind() != ExprKind::kCompare || c->cmp_op() != CmpOp::kEq) continue;
    const Expr* lhs = c->children()[0].get();
    const Expr* rhs = c->children()[1].get();
    if (lhs->kind() != ExprKind::kAttrRef || rhs->kind() != ExprKind::kAttrRef) continue;
    if (lhs->attr_index() != attr || rhs->attr_index() != attr) continue;
    const int e1 = lhs->elem_index();
    const int e2 = rhs->elem_index();
    if (e1 < 0 || e2 < 0) continue;
    if (e1 == e2) {
      const bool chain = (lhs->selector() == RefSelector::kIterPrev &&
                          rhs->selector() == RefSelector::kIterCurr) ||
                         (lhs->selector() == RefSelector::kIterCurr &&
                          rhs->selector() == RefSelector::kIterPrev);
      if (chain) self_chain[static_cast<size_t>(e1)] = true;
    } else {
      links.push_back({e1, lhs->selector(), e2, rhs->selector()});
    }
  }

  // Uniformity: all events an element binds carry one attr value. Single-
  // event elements (non-Kleene positives and negation witnesses) are
  // trivially uniform; a Kleene element is uniform if its iterations are
  // chained equal, or if a cross-element equality pins *every* iteration.
  // That is the case for an x[i+1] reference (the event being bound,
  // checked on each bind) and equally for a cross-element x[i] reference:
  // the NFA compiler rewrites `x[i]` with no `x[i+1]` in the same
  // predicate to the current event (`b[i].V = a.V` style, see
  // nfa.cc), so it too is enforced per iteration. x[first]/x[last] pin
  // only one edge of the binding and do not qualify.
  std::vector<bool> uniform(static_cast<size_t>(n));
  for (int e = 0; e < n; ++e) {
    uniform[static_cast<size_t>(e)] =
        !q.elements[static_cast<size_t>(e)].kleene || self_chain[static_cast<size_t>(e)];
  }
  const auto pins_every_iteration = [](RefSelector s) {
    return s == RefSelector::kIterCurr || s == RefSelector::kIterPrev;
  };
  for (const Link& l : links) {
    if (q.elements[static_cast<size_t>(l.e1)].kleene && pins_every_iteration(l.s1)) {
      uniform[static_cast<size_t>(l.e1)] = true;
    }
    if (q.elements[static_cast<size_t>(l.e2)].kleene && pins_every_iteration(l.s2)) {
      uniform[static_cast<size_t>(l.e2)] = true;
    }
  }
  for (int e = 0; e < n; ++e) {
    if (!uniform[static_cast<size_t>(e)]) return false;
  }

  // With all elements uniform, each equality link equates the elements'
  // (single) attr values; the query is partition-correlated iff the links
  // connect every element into one component.
  UnionFind uf(n);
  for (const Link& l : links) uf.Union(l.e1, l.e2);
  const int root = uf.Find(0);
  for (int e = 1; e < n; ++e) {
    if (uf.Find(e) != root) return false;
  }
  return true;
}

Status ShardRuntime::ValidatePlan() const {
  if (opts_.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (opts_.num_shards == 1 || opts_.skip_validation) return Status::OK();
  const Query& q = nfa_->query();
  if (opts_.routing == ShardRouting::kHashPartition) {
    if (q.policy == SelectionPolicy::kStrictContiguity) {
      return Status::InvalidArgument(
          "strict contiguity depends on stream-adjacent events of every "
          "partition; it cannot be hash-sharded");
    }
    if (opts_.partition_attr < 0) {
      return Status::InvalidArgument("hash routing requires partition_attr");
    }
    if (!IsPartitionCorrelated(*nfa_, opts_.partition_attr)) {
      return Status::InvalidArgument(
          "query is not equality-correlated on the partition attribute; "
          "hash sharding would change the match set");
    }
  } else {
    if (q.policy != SelectionPolicy::kSkipTillAnyMatch) {
      return Status::InvalidArgument(
          "window-slice routing is only exact under skip-till-any-match");
    }
    if (q.count_window > 0) {
      return Status::InvalidArgument(
          "window-slice routing requires a time window (count windows are "
          "anchored to absolute stream positions)");
    }
    if (q.window <= 0) {
      return Status::InvalidArgument("window-slice routing requires a window");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardRuntime>> ShardRuntime::Create(
    std::shared_ptr<const Nfa> nfa, ShardRuntimeOptions opts) {
  std::unique_ptr<ShardRuntime> rt(new ShardRuntime(std::move(nfa), opts));
  CEPSHED_RETURN_NOT_OK(rt->ValidatePlan());
  return rt;
}

Duration ShardRuntime::SliceStride() const {
  if (opts_.slice_stride > 0) return opts_.slice_stride;
  return std::max<Duration>(1, nfa_->window());
}

int ShardRuntime::ShardOfKey(const Value& key, int num_shards) {
  if (num_shards == 1) return 0;
  // Null partition keys fail every equality predicate, so their events
  // can only ever matter as state-0 creations; pin them to shard 0.
  if (key.is_null()) return 0;
  return static_cast<int>(Mix64(static_cast<uint64_t>(key.Hash())) %
                          static_cast<uint64_t>(num_shards));
}

int ShardRuntime::HashShardOf(const Event& event) const {
  return ShardOfKey(event.attr(opts_.partition_attr), opts_.num_shards);
}

void ShardRuntime::RouteEvent(const Event& event, std::vector<int>* out) const {
  out->clear();
  if (opts_.num_shards == 1) {
    out->push_back(0);
    return;
  }
  if (opts_.routing == ShardRouting::kHashPartition) {
    out->push_back(HashShardOf(event));
    return;
  }
  // Window-slice: slice j covers event times [j*L, j*L + L + W); the event
  // goes to the owner shard of every covering slice.
  const Duration l = SliceStride();
  const Duration w = nfa_->window();
  const Timestamp t = event.timestamp();
  const int64_t j_hi = FloorDiv(t, l);
  const int64_t j_lo = std::max<int64_t>(0, FloorDiv(t - l - w, l) + 1);
  for (int64_t j = j_lo; j <= j_hi; ++j) {
    const int shard = static_cast<int>(j % opts_.num_shards);
    if (std::find(out->begin(), out->end(), shard) == out->end()) {
      out->push_back(shard);
    }
    if (static_cast<int>(out->size()) == opts_.num_shards) break;
  }
}

/// All state one shard's worker touches. Engines, monitors, shedders, and
/// guards are confined to the owning worker thread between queue handoff
/// points; the join at the end of Run publishes the results to the caller.
/// The router additionally writes events_rejected (a member the worker
/// never touches) and takes the shard over entirely once the worker thread
/// has been observed dead and joined.
struct ShardRuntime::ShardState {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Shedder> shedder;
  std::unique_ptr<OverloadGuard> guard;
  /// Observability slot of this shard (not owned; null = disabled).
  obs::ShardObs* obs = nullptr;
  /// Matches already counted into obs->matches_emitted.
  size_t obs_matches_seen = 0;
  /// Not owned; null when no faults target this run.
  const FaultInjector* faults = nullptr;
  LatencyMonitor monitor;
  size_t monitor_window = 0;
  std::vector<Match> matches;
  ShardResult result;
  std::unique_ptr<RingQueue<EventPtr>> queue;
  /// Canonical-owner filter for window-slice routing (see Finish).
  bool slice_filter = false;
  int shard_id = 0;
  int num_shards = 1;
  Duration slice_stride = 0;
  /// Ordinal of the next event this shard consumes (fault anchor).
  uint64_t consumed = 0;
  /// Restarts spent so far (router-owned; compared to the budget).
  int restarts = 0;
  bool finished = false;
  /// Worker-thread exit protocol: the worker sets clean_exit (after a
  /// normal drain + Finish) and then worker_exited with release order; the
  /// router reads worker_exited with acquire before touching anything else.
  bool clean_exit = false;
  std::atomic<bool> worker_exited{false};
  std::thread worker;

  explicit ShardState(LatencyMonitor::Options latency)
      : monitor(latency), monitor_window(latency.window) {}

  /// Handles one delivered event. Returns true when an injected death
  /// fault fires: the event is counted lost and the caller must terminate
  /// (or restart) the worker without further consumption.
  bool Consume(const EventPtr& event) {
    ActiveFaults injected;
    if (faults != nullptr) injected = faults->OnConsume(shard_id, consumed);
    ++consumed;
    ++result.events_routed;
    if (obs != nullptr) obs->events_routed.Add();
    if (injected.die) {
      ++result.events_lost;
      if (obs != nullptr) obs->events_lost.Add();
      return true;
    }
    if (injected.stall_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(injected.stall_us));
    }
    double cost;
    if (guard != nullptr && guard->ShouldDropInput(event->seq())) {
      // Guard rho_I: counted as a drop like any other input shedding.
      ++result.events_dropped;
      cost = ShedRunner::kDroppedEventCost;
      if (obs != nullptr) {
        obs->events_dropped_guard.Add();
        obs->audit.Record(obs::AuditKind::kGuardDrop,
                          static_cast<uint8_t>(shard_id), event->timestamp(),
                          -1, monitor.Current(), event->seq());
      }
    } else if (shedder != nullptr && shedder->FilterEvent(*event)) {
      ++result.events_dropped;
      cost = ShedRunner::kDroppedEventCost;
    } else {
      cost = engine->Process(event, &matches);
      ++result.events_processed;
      if (obs != nullptr) {
        obs->events_processed.Add();
        if (matches.size() != obs_matches_seen) {
          obs->matches_emitted.Add(matches.size() - obs_matches_seen);
          obs_matches_seen = matches.size();
        }
      }
    }
    if (obs != nullptr) obs->event_cost.Record(cost * injected.cost_multiplier);
    monitor.Record(cost * injected.cost_multiplier);
    if (shedder != nullptr) {
      const double theta = shedder->theta();
      if (theta > 0.0 && monitor.Count() >= monitor_window) {
        ++result.bound_checked;
        if (monitor.Current() > theta) ++result.bound_violations;
      }
      shedder->AfterEvent(event->timestamp(), monitor.Current());
    }
    if (guard != nullptr) {
      guard->Observe(monitor.Current(), queue != nullptr ? queue->SizeApprox() : 0,
                     queue != nullptr ? queue->capacity() : 0,
                     event->timestamp() + injected.clock_skew_us);
    }
    if (obs != nullptr) {
      // Footprint gauges live here — code shared by Run and RunSequential —
      // so the parallel/sequential snapshot-equality property holds for
      // them too (engine state is a pure function of the shard substream).
      obs->state_bytes.Set(static_cast<int64_t>(engine->ApproxStateBytes()));
      obs->arena_live_bytes.Set(
          static_cast<int64_t>(engine->store().arena().LiveBytes()));
      obs->arena_capacity_bytes.Set(
          static_cast<int64_t>(engine->store().arena().CapacityBytes()));
      obs->flat_cache_entries.Set(static_cast<int64_t>(engine->FlatCacheSize()));
    }
    return false;
  }

  /// Worker-thread body (also the entry point of a restarted worker).
  void WorkerMain() {
    EventPtr event;
    while (queue->Pop(&event)) {
      if (Consume(event)) {
        // Simulated worker death: leave the queue open and Finish unrun;
        // the router detects the exit and restarts or abandons the shard.
        worker_exited.store(true, std::memory_order_release);
        return;
      }
    }
    Finish();
    clean_exit = true;
    worker_exited.store(true, std::memory_order_release);
  }

  void Finish() {
    if (finished) return;
    finished = true;
    result.avg_latency = monitor.OverallAverage();
    result.shed_pms = shedder != nullptr ? shedder->pms_shed() : 0;
    if (guard != nullptr) {
      const OverloadGuard::Stats& g = guard->stats();
      result.guard_input_drops = g.input_drops;
      result.guard_trims = g.trims;
      result.guard_evictions = g.emergency_evictions;
      result.guard_escalations = g.escalations;
      result.guard_final_level = static_cast<int>(g.level);
      result.guard_peak_level = static_cast<int>(g.peak_level);
      result.guard_peak_state_bytes = g.peak_state_bytes;
    }
    result.stats = engine->stats();
    if (slice_filter) FilterToOwnedSlices();
  }

  /// Window-slice routing: every match is kept only by its canonical
  /// owner — the shard owning the slice of the match's first event, whose
  /// coverage [j0*L, j0*L + L + W) provably contains the whole match and
  /// every witness able to veto it. A shard owns several *disjoint*
  /// coverage intervals (slices j, j+N, ...), so its engine can also form
  /// phantom copies bridging the gap between two of them; such a copy may
  /// miss the negation witnesses lying in the gap and must not be emitted.
  void FilterToOwnedSlices() {
    size_t kept = 0;
    for (size_t i = 0; i < matches.size(); ++i) {
      const Timestamp t0 = matches[i].events.front()->timestamp();
      const int64_t j0 = FloorDiv(t0, slice_stride);
      if (static_cast<int>(j0 % num_shards) == shard_id) {
        if (kept != i) matches[kept] = std::move(matches[i]);
        ++kept;
      } else {
        // A copy of a match owned (and correctly vetoed) elsewhere.
        --result.stats.matches_emitted;
      }
    }
    matches.resize(kept);
  }
};

void ShardRuntime::ReviveOrAbandon(ShardState* s) const {
  s->worker.join();
  if (s->clean_exit) return;  // normal drain raced the timeout; nothing to do
  if (s->restarts < opts_.max_worker_restarts) {
    ++s->restarts;
    ++s->result.worker_restarts;
    s->worker_exited.store(false, std::memory_order_relaxed);
    // The restarted worker resumes the same queue and engine: only the
    // death-poisoned event is lost, so recall degrades by exactly one
    // event per death.
    s->worker = std::thread(&ShardState::WorkerMain, s);
  } else {
    AbandonShard(s);
  }
}

void ShardRuntime::AbandonShard(ShardState* s) const {
  s->result.abandoned = true;
  s->queue->Close();
  EventPtr event;
  while (s->queue->Pop(&event)) {
    ++s->result.events_routed;
    ++s->result.events_lost;
    if (s->obs != nullptr) {
      s->obs->events_routed.Add();
      s->obs->events_lost.Add();
    }
  }
  s->Finish();
}

void ShardRuntime::FinishDeadShard(ShardState* s) const {
  bool draining;
  if (s->restarts < opts_.max_worker_restarts) {
    ++s->restarts;
    ++s->result.worker_restarts;
    draining = false;
  } else {
    s->result.abandoned = true;
    draining = true;
  }
  EventPtr event;
  while (s->queue->Pop(&event)) {
    if (draining) {
      ++s->result.events_routed;
      ++s->result.events_lost;
      if (s->obs != nullptr) {
        s->obs->events_routed.Add();
        s->obs->events_lost.Add();
      }
      continue;
    }
    if (s->Consume(event)) {
      if (s->restarts < opts_.max_worker_restarts) {
        ++s->restarts;
        ++s->result.worker_restarts;
      } else {
        s->result.abandoned = true;
        draining = true;
      }
    }
  }
  s->Finish();
}

void ShardRuntime::Merge(std::vector<std::unique_ptr<ShardState>>* shards,
                         ShardRunResult* result) const {
  size_t total_matches = 0;
  for (std::unique_ptr<ShardState>& sp : *shards) {
    ShardState& s = *sp;
    result->shards.push_back(s.result);
    SumStats(s.result.stats, &result->stats);
    result->dropped_events += s.result.events_dropped;
    result->shed_pms += s.result.shed_pms;
    result->lost_events += s.result.events_lost + s.result.events_rejected;
    result->worker_restarts += s.result.worker_restarts;
    if (s.result.abandoned) ++result->shards_abandoned;
    result->guard_input_drops += s.result.guard_input_drops;
    result->guard_trims += s.result.guard_trims;
    result->guard_evictions += s.result.guard_evictions;
    total_matches += s.matches.size();
  }

  // Deterministic total order independent of shard interleaving:
  // (detection timestamp, event-sequence identity). Matches are already
  // unique — hash routing assigns each one partition, and slice routing
  // keeps each match only in its canonical owner shard (FilterToOwnedSlices).
  struct Keyed {
    Timestamp detected_at;
    std::string key;
    Match* match;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(total_matches);
  for (std::unique_ptr<ShardState>& s : *shards) {
    for (Match& m : s->matches) keyed.push_back({m.detected_at, m.Key(), &m});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.detected_at != b.detected_at) return a.detected_at < b.detected_at;
    return a.key < b.key;
  });
  result->matches.reserve(keyed.size());
  for (const Keyed& k : keyed) result->matches.push_back(std::move(*k.match));
}

Result<ShardRunResult> ShardRuntime::Run(const EventStream& stream,
                                         const ShedderFactory& make_shedder) {
  CEPSHED_RETURN_NOT_OK(ValidatePlan());
  // An empty fault schedule costs nothing: the per-event hook stays null.
  const FaultInjector* faults =
      (opts_.faults != nullptr && !opts_.faults->empty()) ? opts_.faults : nullptr;
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(static_cast<size_t>(opts_.num_shards));
  if (opts_.metrics != nullptr) {
    opts_.metrics->EnsureShards(opts_.num_shards);
  }
  for (int i = 0; i < opts_.num_shards; ++i) {
    auto s = std::make_unique<ShardState>(opts_.latency);
    s->slice_filter = opts_.routing == ShardRouting::kWindowSlice;
    s->shard_id = i;
    s->num_shards = opts_.num_shards;
    s->slice_stride = SliceStride();
    s->faults = faults;
    if (opts_.metrics != nullptr) s->obs = opts_.metrics->shard(i);
    s->engine = std::make_unique<Engine>(nfa_, opts_.engine);
    if (make_shedder) {
      s->shedder = make_shedder(i);
      if (s->shedder != nullptr) {
        s->shedder->Bind(s->engine.get());
        if (s->obs != nullptr) s->shedder->set_obs(s->obs, i);
      }
    }
    if (opts_.guard.enabled) {
      s->guard = std::make_unique<OverloadGuard>(opts_.guard);
      s->guard->Attach(s->engine.get());
      if (s->obs != nullptr) s->guard->set_obs(s->obs, i);
    }
    s->queue = std::make_unique<RingQueue<EventPtr>>(opts_.queue_capacity);
    shards.push_back(std::move(s));
  }

  ShardRunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::unique_ptr<ShardState>& s : shards) {
    s->worker = std::thread(&ShardState::WorkerMain, s.get());
  }

  std::vector<int> targets;
  for (const EventPtr& event : stream) {
    ++result.total_events;
    RouteEvent(*event, &targets);
    if (opts_.ingest_tap) opts_.ingest_tap(event, targets);
    for (int t : targets) {
      ShardState& s = *shards[static_cast<size_t>(t)];
      if (s.result.abandoned) {
        ++s.result.events_rejected;
        continue;
      }
      if (faults != nullptr && faults->SaturatePush(t, event->seq())) {
        ++s.result.events_rejected;
        continue;
      }
      // Queue-wait is timed only once a push has actually blocked past the
      // first timeout: the uncontended fast path stays clock-free.
      bool waited = false;
      std::chrono::steady_clock::time_point wait_start;
      for (;;) {
        const QueuePushResult r = s.queue->PushFor(event, opts_.push_timeout_us);
        if (r != QueuePushResult::kTimedOut && waited && s.obs != nullptr) {
          s.obs->queue_wait_us.Record(std::chrono::duration<double, std::micro>(
                                          std::chrono::steady_clock::now() - wait_start)
                                          .count());
        }
        if (r == QueuePushResult::kOk) {
          ++result.routed_events;
          break;
        }
        if (r == QueuePushResult::kClosed) {
          ++s.result.events_rejected;
          break;
        }
        if (!waited) {
          waited = true;
          wait_start = std::chrono::steady_clock::now();
          if (s.obs != nullptr) s.obs->queue_push_timeouts.Add();
        }
        // Timed out on a full queue: either the consumer is merely slow
        // (keep waiting) or its thread is gone (restart or abandon). This
        // bounded-wait loop is what turns a dead shard into degraded
        // recall instead of a deadlocked router.
        if (s.worker_exited.load(std::memory_order_acquire)) {
          ReviveOrAbandon(&s);
          if (s.result.abandoned) {
            ++s.result.events_rejected;
            break;
          }
        }
      }
    }
  }
  for (std::unique_ptr<ShardState>& s : shards) s->queue->Close();
  for (std::unique_ptr<ShardState>& s : shards) {
    if (s->worker.joinable()) s->worker.join();
  }
  // Workers that died close enough to the end of the stream never stalled
  // a push, so the router meets them here for the first time: resume their
  // backlog inline (their restart) or drain it as lost.
  for (std::unique_ptr<ShardState>& s : shards) {
    if (s->clean_exit || s->result.abandoned) continue;
    FinishDeadShard(s.get());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Merge(&shards, &result);
  if (result.shards_abandoned == opts_.num_shards && opts_.num_shards > 0 &&
      result.total_events > 0) {
    return Status::Unavailable(
        "every shard worker died and exhausted its restart budget");
  }
  return result;
}

Result<ShardRunResult> ShardRuntime::RunSequential(
    const EventStream& stream, const ShedderFactory& make_shedder) {
  CEPSHED_RETURN_NOT_OK(ValidatePlan());
  const FaultInjector* faults =
      (opts_.faults != nullptr && !opts_.faults->empty()) ? opts_.faults : nullptr;
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(static_cast<size_t>(opts_.num_shards));
  if (opts_.metrics != nullptr) {
    opts_.metrics->EnsureShards(opts_.num_shards);
  }
  for (int i = 0; i < opts_.num_shards; ++i) {
    auto s = std::make_unique<ShardState>(opts_.latency);
    s->slice_filter = opts_.routing == ShardRouting::kWindowSlice;
    s->shard_id = i;
    s->num_shards = opts_.num_shards;
    s->slice_stride = SliceStride();
    s->faults = faults;
    if (opts_.metrics != nullptr) s->obs = opts_.metrics->shard(i);
    s->engine = std::make_unique<Engine>(nfa_, opts_.engine);
    if (make_shedder) {
      s->shedder = make_shedder(i);
      if (s->shedder != nullptr) {
        s->shedder->Bind(s->engine.get());
        if (s->obs != nullptr) s->shedder->set_obs(s->obs, i);
      }
    }
    if (opts_.guard.enabled) {
      s->guard = std::make_unique<OverloadGuard>(opts_.guard);
      s->guard->Attach(s->engine.get());
      if (s->obs != nullptr) s->guard->set_obs(s->obs, i);
    }
    shards.push_back(std::move(s));
  }

  ShardRunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  // Materialize each shard's substream in routing order — exactly the
  // sequence the parallel worker would pop from its queue. Saturation
  // faults refuse delivery here just as they refuse the parallel push.
  std::vector<std::vector<EventPtr>> substreams(shards.size());
  std::vector<int> targets;
  for (const EventPtr& event : stream) {
    ++result.total_events;
    RouteEvent(*event, &targets);
    if (opts_.ingest_tap) opts_.ingest_tap(event, targets);
    for (int t : targets) {
      if (faults != nullptr && faults->SaturatePush(t, event->seq())) {
        ++shards[static_cast<size_t>(t)]->result.events_rejected;
        continue;
      }
      substreams[static_cast<size_t>(t)].push_back(event);
      ++result.routed_events;
    }
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    ShardState& s = *shards[i];
    // Death faults mirror the parallel path: the poisoned event is lost,
    // the shard "restarts" while its budget lasts, and afterwards the rest
    // of its substream drains as lost.
    bool draining = false;
    for (const EventPtr& event : substreams[i]) {
      if (draining) {
        ++s.result.events_routed;
        ++s.result.events_lost;
        if (s.obs != nullptr) {
          s.obs->events_routed.Add();
          s.obs->events_lost.Add();
        }
        continue;
      }
      if (s.Consume(event)) {
        if (s.restarts < opts_.max_worker_restarts) {
          ++s.restarts;
          ++s.result.worker_restarts;
        } else {
          s.result.abandoned = true;
          draining = true;
        }
      }
    }
    s.Finish();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Merge(&shards, &result);
  if (result.shards_abandoned == opts_.num_shards && opts_.num_shards > 0 &&
      result.total_events > 0) {
    return Status::Unavailable(
        "every shard worker died and exhausted its restart budget");
  }
  return result;
}

}  // namespace cepshed
