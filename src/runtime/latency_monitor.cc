// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/latency_monitor.h"

#include <algorithm>

namespace cepshed {

LatencyMonitor::LatencyMonitor() : LatencyMonitor(Options()) {}

LatencyMonitor::LatencyMonitor(Options options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  ring_.assign(options_.window, 0.0);
}

void LatencyMonitor::Record(double latency) {
  if (filled_ == options_.window) {
    window_sum_ -= ring_[head_];
  } else {
    ++filled_;
  }
  ring_[head_] = latency;
  head_ = (head_ + 1) % options_.window;
  window_sum_ += latency;
  total_sum_ += latency;
  ++count_;

  if (options_.stat == LatencyStat::kAverage) {
    // The incremental add/subtract accumulates floating-point error over
    // millions of records; re-sum the ring exactly once per window's worth
    // of records to keep the drift bounded.
    if (++since_refresh_ >= options_.window) {
      since_refresh_ = 0;
      window_sum_ = 0.0;
      for (size_t i = 0; i < filled_; ++i) window_sum_ += ring_[i];
    }
    current_ = window_sum_ / static_cast<double>(filled_);
    return;
  }
  if (++since_refresh_ >= options_.refresh_every || count_ <= options_.refresh_every) {
    since_refresh_ = 0;
    Refresh();
  }
}

void LatencyMonitor::Refresh() {
  scratch_.assign(ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(filled_));
  if (scratch_.empty()) {
    current_ = 0.0;
    return;
  }
  const double q = options_.stat == LatencyStat::kP95 ? 0.95 : 0.99;
  const size_t idx = std::min(
      scratch_.size() - 1,
      static_cast<size_t>(q * static_cast<double>(scratch_.size() - 1) + 0.5));
  std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<ptrdiff_t>(idx),
                   scratch_.end());
  current_ = scratch_[idx];
}

double LatencyMonitor::OverallAverage() const {
  return count_ == 0 ? 0.0 : total_sum_ / static_cast<double>(count_);
}

void LatencyMonitor::Reset() {
  std::fill(ring_.begin(), ring_.end(), 0.0);
  head_ = filled_ = count_ = 0;
  window_sum_ = total_sum_ = 0.0;
  since_refresh_ = 0;
  current_ = 0.0;
}

}  // namespace cepshed
