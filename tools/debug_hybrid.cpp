// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Developer diagnostic: dumps the trained cost model (classes, estimates,
// classifier accuracy) and traces the hybrid strategy's shedding sets on
// DS1/Q1. Not part of the benchmark suite.

#include <cstdio>

#include "src/runtime/experiment.h"
#include "src/shed/hybrid.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"

using namespace cepshed;

int main() {
  const Schema schema = MakeDs1Schema();
  Ds1Options gen;
  gen.num_events = 30000;
  gen.seed = 11;
  const EventStream train = GenerateDs1(schema, gen);
  gen.seed = 12;
  const EventStream test = GenerateDs1(schema, gen);

  auto query = queries::Q1("8ms");
  HarnessOptions opts;
  opts.cost_model.fixed_k_per_state = {8, 8, 8};
  ExperimentHarness harness(&schema, *query, opts);
  Status st = harness.Prepare(train, test);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const CostModel& model = harness.model();
  const OfflineStats& off = harness.offline();
  std::printf("offline: %zu records, %zu matches, replay %.2fs\n", off.records.size(),
              off.num_matches, off.replay_seconds);
  for (int s = 0; s < model.num_states(); ++s) {
    std::printf("state %d: %d classes, pm_tree leaves %zu, event tree acc %.3f\n",
                s, model.NumClasses(s), model.pm_tree(s).num_leaves(),
                model.event_tree(s).training_accuracy());
    for (int c = 0; c < model.NumClasses(s); ++c) {
      std::printf("  class %d:", c);
      for (int sl = 0; sl < model.num_slices(); ++sl) {
        std::printf(" [sl%d C+=%.3f C-=%.3f]", sl, model.Contribution(s, c, sl),
                    model.Consumption(s, c, sl));
      }
      std::printf("\n");
    }
  }

  std::printf("\nbaseline avg latency: %.1f\n", harness.BaselineLatency());

  // Manual hybrid run with trigger tracing.
  CostModel run_model = model;
  auto nfa = harness.nfa();
  Engine engine(nfa, opts.engine);
  engine.set_classifier(
      [&](const PartialMatch& pm) { return run_model.Classify(pm); });
  engine.set_pm_created_hook([&](const PartialMatch& pm, const PartialMatch* parent) {
    run_model.OnPmCreated(pm, parent, pm.last_ts);
  });
  engine.set_match_hook([&](const Match& m, const PartialMatch* parent) {
    run_model.OnMatch(m, parent, m.detected_at);
  });

  HybridOptions hopts;
  hopts.theta = 0.5 * harness.BaselineLatency();
  hopts.trigger_delay = 200;
  HybridShedder shedder(&run_model, hopts);
  shedder.Bind(&engine);

  LatencyMonitor monitor(opts.latency);
  std::vector<Match> matches;
  size_t triggers_seen = 0;
  uint64_t dropped = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const EventPtr& e = test[i];
    double cost;
    if (shedder.FilterEvent(*e)) {
      cost = 0.05;
      ++dropped;
    } else {
      cost = engine.Process(e, &matches);
    }
    monitor.Record(cost);
    const uint64_t before = shedder.triggers();
    shedder.AfterEvent(e->timestamp(), monitor.Current());
    if (shedder.triggers() != before && triggers_seen < 8) {
      ++triggers_seen;
      const double mu = monitor.Current();
      std::printf("trigger @%zu mu=%.1f violation=%.2f alive=%zu shed_so_far=%llu "
                  "input_active=%d\n",
                  i, mu, (mu - hopts.theta) / mu, engine.NumPartialMatches(),
                  static_cast<unsigned long long>(shedder.pms_shed()),
                  shedder.input_filter_active() ? 1 : 0);
      const auto set = SelectSheddingSet(&engine, run_model,
                                         (mu - hopts.theta) / mu,
                                         e->timestamp(), KnapsackMode::kDP);
      for (const auto& item : set) {
        std::printf("   shed item: state=%d cls=%d slice=%d d+=%.4f d-=%.4f n=%zu\n",
                    item.state, item.cls, item.slice, item.delta_plus,
                    item.delta_minus, item.pm_count);
      }
    }
  }
  std::printf("\nfinal: matches=%zu truth=%zu dropped=%llu shed_pms=%llu triggers=%llu\n",
              matches.size(), harness.truth().size(),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(shedder.pms_shed()),
              static_cast<unsigned long long>(shedder.triggers()));

  // Oracle: kill every provably worthless state-2 partial match
  // (a.V + b.V > 10 can never equal any c.V) right after creation.
  {
    class OracleShedder : public Shedder {
     public:
      explicit OracleShedder(int v_attr) : v_attr_(v_attr) {}
      std::string Name() const override { return "Oracle"; }
      bool FilterEvent(const Event&) override { return false; }
      void AfterEvent(Timestamp, double) override {
        engine_->store().ForEachAlive([&](PartialMatch* pm) {
          if (pm->state != 2) return;
          const int64_t sum = pm->EventAt(0)->attr(v_attr_).AsInt() +
                              pm->EventAt(1)->attr(v_attr_).AsInt();
          if (sum > 10) KillPm(pm);
        });
      }
     private:
      int v_attr_;
    };
    Engine oracle_engine(nfa, opts.engine);
    OracleShedder oracle(schema.AttributeIndex("V"));
    ShedRunner runner(&oracle_engine, &oracle, opts.latency);
    RunResult rr = runner.Run(test);
    const auto q = ComputeQuality(rr.matches, harness.truth());
    std::printf("Oracle     recall=%5.1f%% shed=%llu avg_lat=%.0f (baseline %.0f)\n",
                100 * q.recall, static_cast<unsigned long long>(oracle.pms_shed()),
                rr.avg_latency, harness.BaselineLatency());
  }

  for (StrategyKind kind : {StrategyKind::kHyI, StrategyKind::kHyS, StrategyKind::kHybrid}) {
    const ExperimentResult r = harness.RunBound(kind, 0.5);
    std::printf("%-10s recall=%5.1f%% dropped=%llu (%.1f%%) shed=%llu (%.1f%%) avg_lat=%.0f\n",
                r.name.c_str(), 100 * r.quality.recall,
                static_cast<unsigned long long>(r.raw.dropped_events),
                100 * r.shed_event_ratio,
                static_cast<unsigned long long>(r.raw.shed_pms),
                100 * r.shed_pm_ratio, r.avg_latency);
  }

  // Zero-only state shedding ablation: how much latency do the
  // zero-contribution classes buy, and is killing them really lossless?
  for (bool adapt : {true, false}) {
    CostModel zmodel = model;
    if (!adapt) {
      // Freeze the trained estimates to isolate adaptation effects.
      CostModelOptions frozen = opts.cost_model;
      frozen.enable_online_adaptation = false;
      CostModel fresh(nfa, frozen);
      Rng r2(99);
      (void)fresh.Train(harness.offline(), &r2);
      zmodel = fresh;
    }
    HybridOptions zopts;
    zopts.theta = 0.5 * harness.BaselineLatency();
    zopts.enable_input = false;
    zopts.state_zero_only = true;
    HybridShedder zshedder(&zmodel, zopts);
    Engine zengine(nfa, opts.engine);
    zengine.set_classifier([&](const PartialMatch& pm) { return zmodel.Classify(pm); });
    zengine.set_pm_created_hook([&](const PartialMatch& pm, const PartialMatch* parent) {
      zmodel.OnPmCreated(pm, parent, pm.last_ts);
    });
    zengine.set_match_hook([&](const Match& m, const PartialMatch* parent) {
      zmodel.OnMatch(m, parent, m.detected_at);
    });
    ShedRunner zrunner(&zengine, &zshedder, opts.latency);
    RunResult rr = zrunner.Run(test);
    const auto q = ComputeQuality(rr.matches, harness.truth());
    std::printf("ZeroOnly(adapt=%d) recall=%5.1f%% shed=%llu avg_lat=%.0f\n",
                adapt ? 1 : 0, 100 * q.recall,
                static_cast<unsigned long long>(zshedder.pms_shed()), rr.avg_latency);
  }
  return 0;
}
