// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Lexer for the SASE-style surface syntax of the paper's listings:
//   PATTERN SEQ(BikeTrip+ a[], BikeTrip b)
//   WHERE a[i+1].bike=a[i].bike AND b.end IN {7,8,9} ...
//   WITHIN 1h
// Unicode operators from the paper's typography are accepted too
// (¬ for NOT, ∈ for IN, ≤ ≥ ≠).

#ifndef CEPSHED_QUERY_LEXER_H_
#define CEPSHED_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace cepshed {

/// \brief Token kinds produced by the lexer.
enum class TokenKind : int {
  kEnd,
  kIdent,     // identifiers and keywords (keyword check is by the parser)
  kInt,       // integer literal
  kDouble,    // floating literal
  kString,    // 'quoted' string literal
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLBrace,    // {
  kRBrace,    // }
  kComma,     // ,
  kDot,       // .
  kPlus,      // +
  kMinus,     // -
  kStar,      // *
  kSlash,     // /
  kPercent,   // %
  kEq,        // =
  kNe,        // != or <> or ≠
  kLt,        // <
  kLe,        // <= or ≤
  kGt,        // >
  kGe,        // >= or ≥
  kBang,      // ! or ¬  (negated pattern component / NOT)
  kIn,        // ∈ (keyword IN arrives as kIdent)
};

/// \brief One token with its source position for error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier text / literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;      // byte offset in the input
};

/// \brief Tokenizes `input`; fails with ParseError on unknown characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Case-insensitive keyword comparison for identifier tokens.
bool IsKeyword(const Token& token, std::string_view keyword);

}  // namespace cepshed

#endif  // CEPSHED_QUERY_LEXER_H_
