// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/partial_match.h"

namespace cepshed {

PartialMatchStore::PartialMatchStore(int num_states, int num_elements)
    : buckets_(static_cast<size_t>(num_states)),
      witness_buckets_(static_cast<size_t>(num_elements)) {}

PartialMatch* PartialMatchStore::Add(std::unique_ptr<PartialMatch> pm) {
  PartialMatch* raw = pm.get();
  fixed_live_bytes_ += FixedBytes(*pm);
  buckets_[static_cast<size_t>(pm->state)].push_back(std::move(pm));
  ++num_alive_;
  return raw;
}

PartialMatch* PartialMatchStore::AddWitness(std::unique_ptr<PartialMatch> pm) {
  PartialMatch* raw = pm.get();
  pm->is_witness = true;
  fixed_live_bytes_ += FixedBytes(*pm);
  witness_buckets_[static_cast<size_t>(pm->negated_elem)].push_back(std::move(pm));
  ++num_alive_witnesses_;
  return raw;
}

void PartialMatchStore::Kill(PartialMatch* pm) {
  if (!pm->alive) return;
  pm->alive = false;
  ++num_dead_;
  const size_t bytes = FixedBytes(*pm);
  fixed_live_bytes_ -= bytes <= fixed_live_bytes_ ? bytes : fixed_live_bytes_;
  // Release the chain now so the memory signal (and the arena's free
  // list) reflect the kill immediately; Length()/slot_end stay readable
  // for audit consumers that inspect a match after shedding it.
  pm->ReleaseChain();
  if (pm->is_witness) {
    --num_alive_witnesses_;
  } else {
    --num_alive_;
  }
}

size_t PartialMatchStore::EvictExpired(Timestamp now, Duration window) {
  size_t evicted = 0;
  auto sweep = [&](Bucket& bucket) {
    for (auto& pm : bucket) {
      if (pm->alive && pm->Expired(now, window)) {
        Kill(pm.get());
        ++evicted;
      }
    }
  };
  for (auto& bucket : buckets_) sweep(bucket);
  for (auto& bucket : witness_buckets_) sweep(bucket);
  return evicted;
}

void PartialMatchStore::ForEachAlive(const std::function<void(PartialMatch*)>& fn) {
  for (auto& bucket : buckets_) {
    for (auto& pm : bucket) {
      if (pm->alive) fn(pm.get());
    }
  }
}

void PartialMatchStore::ForEachAliveWitness(
    const std::function<void(PartialMatch*)>& fn) {
  for (auto& bucket : witness_buckets_) {
    for (auto& pm : bucket) {
      if (pm->alive) fn(pm.get());
    }
  }
}

void PartialMatchStore::Compact() {
  auto compact_bucket = [](Bucket& bucket) {
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i]->alive) {
        if (keep != i) bucket[keep] = std::move(bucket[i]);
        ++keep;
      }
    }
    bucket.resize(keep);
  };
  for (auto& bucket : buckets_) compact_bucket(bucket);
  for (auto& bucket : witness_buckets_) compact_bucket(bucket);
  num_dead_ = 0;
}

void PartialMatchStore::AdoptForeignArenas(
    const std::vector<std::shared_ptr<BindingArena>>& arenas) {
  for (const std::shared_ptr<BindingArena>& a : arenas) {
    if (a == nullptr || a == arena_) continue;
    bool known = false;
    for (const std::shared_ptr<BindingArena>& have : foreign_arenas_) {
      if (have == a) {
        known = true;
        break;
      }
    }
    if (!known) foreign_arenas_.push_back(a);
  }
  PruneForeignArenas();
}

void PartialMatchStore::PruneForeignArenas() {
  size_t keep = 0;
  for (size_t i = 0; i < foreign_arenas_.size(); ++i) {
    if (foreign_arenas_[i]->live_nodes() > 0) {
      if (keep != i) foreign_arenas_[keep] = std::move(foreign_arenas_[i]);
      ++keep;
    }
  }
  foreign_arenas_.resize(keep);
}

size_t PartialMatchStore::ForeignArenaLiveBytes() const {
  size_t bytes = 0;
  for (const std::shared_ptr<BindingArena>& a : foreign_arenas_) {
    bytes += a->LiveBytes();
  }
  return bytes;
}

void PartialMatchStore::ExtractIf(
    const std::function<bool(const PartialMatch&)>& pred,
    std::vector<std::unique_ptr<PartialMatch>>* regulars,
    std::vector<std::unique_ptr<PartialMatch>>* witnesses) {
  auto extract_bucket = [&](Bucket& bucket, bool witness_bucket) {
    size_t keep = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      std::unique_ptr<PartialMatch>& pm = bucket[i];
      if (pm->alive && pred(*pm)) {
        const size_t bytes = FixedBytes(*pm);
        fixed_live_bytes_ -= bytes <= fixed_live_bytes_ ? bytes : fixed_live_bytes_;
        if (witness_bucket) {
          --num_alive_witnesses_;
          witnesses->push_back(std::move(pm));
        } else {
          --num_alive_;
          regulars->push_back(std::move(pm));
        }
        continue;
      }
      if (keep != i) bucket[keep] = std::move(bucket[i]);
      ++keep;
    }
    bucket.resize(keep);
  };
  for (auto& bucket : buckets_) extract_bucket(bucket, false);
  for (auto& bucket : witness_buckets_) extract_bucket(bucket, true);
}

double PartialMatchStore::DeadFraction() const {
  const size_t total = num_alive_ + num_alive_witnesses_ + num_dead_;
  return total == 0 ? 0.0 : static_cast<double>(num_dead_) / static_cast<double>(total);
}

void PartialMatchStore::Clear() {
  for (auto& bucket : buckets_) bucket.clear();
  for (auto& bucket : witness_buckets_) bucket.clear();
  num_alive_ = num_alive_witnesses_ = num_dead_ = 0;
  fixed_live_bytes_ = 0;
  PruneForeignArenas();
}

}  // namespace cepshed
