// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/cep/nfa.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace cepshed {

namespace {

bool HasAggregateNode(const Expr& e) {
  if (e.kind() == ExprKind::kAggregate) return true;
  for (const auto& child : e.children()) {
    if (HasAggregateNode(*child)) return true;
  }
  return false;
}

bool HasAggregateOverElem(const Expr& e, int elem) {
  if (e.kind() == ExprKind::kAggregate && e.elem_index() == elem) return true;
  for (const auto& child : e.children()) {
    if (HasAggregateOverElem(*child, elem)) return true;
  }
  return false;
}

bool HasIterCurrRef(const Expr& e, int elem) {
  std::vector<const Expr*> refs;
  e.CollectAttrRefs(&refs);
  for (const Expr* r : refs) {
    if (r->elem_index() == elem && r->selector() == RefSelector::kIterCurr) {
      return true;
    }
  }
  return false;
}

// True if the expression can be evaluated over a stored partial match that
// is filling `anchor_elem`: it references only elements strictly before the
// anchor, or the anchor itself via kIterPrev/kFirst/kLast selectors
// (rewritten by the caller where needed).
bool EvaluableOnStoredMatch(const Expr& e, int anchor_elem) {
  std::vector<const Expr*> refs;
  e.CollectAttrRefs(&refs);
  for (const Expr* r : refs) {
    if (r->elem_index() > anchor_elem) return false;
    if (r->elem_index() == anchor_elem &&
        (r->selector() == RefSelector::kSingle ||
         r->selector() == RefSelector::kIterCurr)) {
      return false;
    }
  }
  return !HasAggregateNode(e);
}

// Extracts a hash-join key from an equality predicate anchored at
// `anchor_elem`: one side must be a bare attribute of the event being bound
// (AttrRef on the anchor with a current-event selector), the other side
// evaluable on the stored match. For Kleene extension keys the caller
// rewrites kIterPrev references to kLast first.
bool ExtractJoinKey(const ExprPtr& pred, int anchor_elem, JoinIndexSpec* spec) {
  if (pred->kind() != ExprKind::kCompare || pred->cmp_op() != CmpOp::kEq) {
    return false;
  }
  const auto& kids = pred->children();
  for (int side = 0; side < 2; ++side) {
    const ExprPtr& probe = kids[static_cast<size_t>(side)];
    const ExprPtr& build = kids[static_cast<size_t>(1 - side)];
    if (probe->kind() != ExprKind::kAttrRef) continue;
    if (probe->elem_index() != anchor_elem) continue;
    if (probe->selector() != RefSelector::kSingle &&
        probe->selector() != RefSelector::kIterCurr) {
      continue;
    }
    if (!EvaluableOnStoredMatch(*build, anchor_elem)) continue;
    spec->probe_attr = probe->attr_index();
    spec->build_expr = build;
    spec->expression_key = build->kind() != ExprKind::kAttrRef;
    return true;
  }
  return false;
}

}  // namespace

Result<std::shared_ptr<Nfa>> Nfa::Compile(Query query, const Schema* schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("Nfa::Compile requires a schema");
  }
  CEPSHED_RETURN_NOT_OK(query.Validate(*schema));

  auto nfa = std::shared_ptr<Nfa>(new Nfa());
  nfa->query_ = std::move(query);
  nfa->schema_ = schema;
  const Query& q = nfa->query_;

  // Positive states and element <-> slot mapping.
  nfa->slot_of_elem_ = q.PositiveSlots();
  for (size_t i = 0; i < q.elements.size(); ++i) {
    const PatternElement& el = q.elements[i];
    if (el.negated) continue;
    NfaState state;
    state.pattern_elem = static_cast<int>(i);
    state.event_type = el.event_type_id;
    state.kleene = el.kleene;
    state.min_reps = el.kleene ? el.min_reps : 1;
    state.max_reps = el.kleene ? el.max_reps : 1;
    nfa->states_.push_back(std::move(state));
  }

  // Negation specs (preds filled below).
  for (size_t i = 0; i < q.elements.size(); ++i) {
    const PatternElement& el = q.elements[i];
    if (!el.negated) continue;
    NegationSpec neg;
    neg.pattern_elem = static_cast<int>(i);
    neg.event_type = el.event_type_id;
    for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
      if (!q.elements[static_cast<size_t>(j)].negated) {
        neg.prev_state = nfa->slot_of_elem_[static_cast<size_t>(j)];
        break;
      }
    }
    for (size_t j = i + 1; j < q.elements.size(); ++j) {
      if (!q.elements[j].negated) {
        neg.next_state = nfa->slot_of_elem_[j];
        break;
      }
    }
    nfa->negations_.push_back(std::move(neg));
  }

  // Compile predicates: anchor, iteration-reference normalization, flags.
  for (const ExprPtr& raw_pred : q.predicates) {
    auto cp = std::make_unique<CompiledPredicate>();

    // Which negated elements does it reference?
    std::vector<int> negated_refs;
    for (size_t i = 0; i < q.elements.size(); ++i) {
      if (q.elements[i].negated && raw_pred->RefsElem(static_cast<int>(i))) {
        negated_refs.push_back(static_cast<int>(i));
      }
    }
    if (negated_refs.size() > 1) {
      return Status::Unimplemented(
          "predicate references multiple negated components: " + raw_pred->ToString());
    }

    ExprPtr expr = raw_pred;
    if (!negated_refs.empty()) {
      cp->is_negation = true;
      cp->anchor_elem = negated_refs[0];
    } else {
      cp->anchor_elem = expr->MaxElemRef();
      if (cp->anchor_elem < 0) {
        // Constant predicate: evaluate on the very first bind.
        cp->anchor_elem = nfa->states_[0].pattern_elem;
      }
      const PatternElement& anchor = q.elements[static_cast<size_t>(cp->anchor_elem)];
      if (anchor.kleene && expr->HasIterPrevRef(cp->anchor_elem) &&
          !HasIterCurrRef(*expr, cp->anchor_elem)) {
        // `b[i].V = a.V` style: x[i] with no x[i+1] denotes the event being
        // bound at each iteration; rewrite to a current-event reference.
        expr = expr->CloneReplacingSelector(cp->anchor_elem, RefSelector::kIterPrev,
                                            RefSelector::kIterCurr);
      }
    }
    cp->expr = expr;
    cp->needs_iter_prev = !cp->is_negation && expr->HasIterPrevRef(cp->anchor_elem);
    if (!cp->is_negation) {
      const PatternElement& anchor = q.elements[static_cast<size_t>(cp->anchor_elem)];
      cp->is_close = anchor.kleene && HasAggregateOverElem(*expr, cp->anchor_elem) &&
                     !HasIterCurrRef(*expr, cp->anchor_elem);
    }
    cp->static_cost = expr->StaticCost();

    // Event-only: reads nothing but the event being bound.
    {
      std::vector<const Expr*> refs;
      expr->CollectAttrRefs(&refs);
      bool event_only = !HasAggregateNode(*expr) && !cp->is_negation;
      for (const Expr* r : refs) {
        if (r->elem_index() != cp->anchor_elem ||
            (r->selector() != RefSelector::kSingle &&
             r->selector() != RefSelector::kIterCurr)) {
          event_only = false;
          break;
        }
      }
      cp->event_only = event_only;
    }

    nfa->predicates_.push_back(std::move(cp));
  }

  // Attach predicates to states / negation specs.
  for (const auto& cp : nfa->predicates_) {
    if (cp->is_negation) {
      for (NegationSpec& neg : nfa->negations_) {
        if (neg.pattern_elem == cp->anchor_elem) {
          neg.preds.push_back(cp.get());
          break;
        }
      }
      continue;
    }
    const int slot = nfa->slot_of_elem_[static_cast<size_t>(cp->anchor_elem)];
    if (slot < 0) {
      return Status::Internal("predicate anchored at negated component without negation refs");
    }
    NfaState& state = nfa->states_[static_cast<size_t>(slot)];
    if (cp->is_close) {
      state.close_preds.push_back(cp.get());
    } else if (cp->needs_iter_prev) {
      state.iter_preds.push_back(cp.get());
    } else {
      state.bind_preds.push_back(cp.get());
    }
    state.bind_cost += cp->static_cost;
  }

  // Join-index specs per state.
  for (NfaState& state : nfa->states_) {
    for (const CompiledPredicate* cp : state.bind_preds) {
      if (state.fill_index.valid()) break;
      JoinIndexSpec spec;
      if (ExtractJoinKey(cp->expr, state.pattern_elem, &spec) &&
          spec.build_expr->MaxElemRef() >= 0) {
        // The build side must reference at least one bound element;
        // constant = constant is no join.
        state.fill_index = std::move(spec);
      }
    }
    if (state.kleene) {
      for (const CompiledPredicate* cp : state.iter_preds) {
        if (state.extend_index.valid()) break;
        // Rewrite x[i] -> x[last] so the key is evaluable on a stored match.
        ExprPtr rewritten = cp->expr->CloneReplacingSelector(
            state.pattern_elem, RefSelector::kIterPrev, RefSelector::kLast);
        JoinIndexSpec spec;
        if (ExtractJoinKey(rewritten, state.pattern_elem, &spec)) {
          state.extend_index = std::move(spec);
        }
      }
    }
  }

  // Type dispatch tables.
  nfa->states_for_type_.assign(schema->num_event_types(), {});
  nfa->negations_for_type_.assign(schema->num_event_types(), {});
  for (int s = 0; s < nfa->num_states(); ++s) {
    nfa->states_for_type_[static_cast<size_t>(nfa->states_[static_cast<size_t>(s)].event_type)]
        .push_back(s);
  }
  for (const NegationSpec& neg : nfa->negations_) {
    nfa->negations_for_type_[static_cast<size_t>(neg.event_type)].push_back(
        neg.pattern_elem);
  }

  // Predictor attributes for the cost model classifiers: the attributes
  // appearing in query predicates, EXCLUDING those used only as
  // element-to-element (in)equality join keys. A pure join key is
  // value-agnostic — every value behaves identically — and id-like keys
  // (task ids, bike ids) would otherwise let the classifier memorize
  // which individuals happened to match in training.
  std::map<int, std::pair<size_t, size_t>> ref_counts;  // attr -> (total, join)
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    const bool cross_elem_key =
        e.kind() == ExprKind::kCompare &&
        (e.cmp_op() == CmpOp::kEq || e.cmp_op() == CmpOp::kNe) &&
        e.children().size() == 2 &&
        e.children()[0]->kind() == ExprKind::kAttrRef &&
        e.children()[1]->kind() == ExprKind::kAttrRef &&
        e.children()[0]->elem_index() != e.children()[1]->elem_index();
    if (cross_elem_key) {
      for (const auto& child : e.children()) {
        auto& [total, join] = ref_counts[child->attr_index()];
        ++total;
        ++join;
      }
      return;
    }
    if (e.kind() == ExprKind::kAttrRef) {
      ++ref_counts[e.attr_index()].first;
      return;
    }
    if (e.kind() == ExprKind::kAggregate) {
      ++ref_counts[e.attr_index()].first;
    }
    for (const auto& child : e.children()) walk(*child);
  };
  for (const auto& cp : nfa->predicates_) walk(*cp->expr);
  for (const auto& [attr, counts] : ref_counts) {
    if (counts.first > counts.second) nfa->predicate_attrs_.push_back(attr);
  }

  // Lower the predicates into bytecode. One builder for the whole query so
  // attribute-load registers are shared across programs (an attribute read
  // by several predicates of one state is fetched once per context).
  // Predicates that refuse compilation (aggregates) keep vm_program == -1
  // and fall back to the tree interpreter at evaluation time.
  PredVmBuilder vm_builder(schema);
  for (const auto& cp : nfa->predicates_) {
    cp->vm_program = vm_builder.Add(*cp->expr);
  }
  for (NfaState& state : nfa->states_) {
    if (state.fill_index.valid()) {
      state.fill_index.vm_build_program = vm_builder.Add(*state.fill_index.build_expr);
    }
    if (state.extend_index.valid()) {
      state.extend_index.vm_build_program =
          vm_builder.Add(*state.extend_index.build_expr);
    }
  }
  nfa->vm_module_ = vm_builder.Build();

  return nfa;
}

}  // namespace cepshed
