// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 14 of the paper: non-monotonic queries. Q4 negates event type B;
// its occurrence probability is varied from 5% to 50% while a fixed ratio
// of the partial matches is shed. Recall stays stable (only the least
// important matches are shed) while precision decreases: discarded
// negation witnesses can no longer veto false positives. We shed 50%
// (the paper sheds 10%): in this engine Q4's regular state is only the
// single-A prefixes, so witnesses are a far larger share of the store
// than in the original engine and a 10% ratio would not cover them.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 14", "DS1/Q4, 50% of partial matches shed, varying P(B)",
         "p_negated_type,precision,recall");
  for (int pct : {5, 10, 20, 30, 40, 50}) {
    Ds1Options gen;
    gen.num_events = 20000;
    // B takes `pct` percent of the stream; A, C, D split the rest evenly.
    const double rest = (100.0 - pct) / 3.0;
    gen.type_weights[0] = rest;
    gen.type_weights[1] = static_cast<double>(pct);
    gen.type_weights[2] = rest;
    gen.type_weights[3] = rest;
    auto exp = PrepareDs1(*queries::Q4("8ms"), gen);
    const ExperimentResult r = exp.harness->RunFixed(StrategyKind::kHyS, 0.50);
    std::printf("%d,%.4f,%.4f\n", pct, r.quality.precision, r.quality.recall);
  }
  return 0;
}
