// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The latency model: mu(k) as a sliding statistic over per-event
// processing latencies ("latency is assessed for a fixed-size interval,
// e.g., as a sliding average over 1,000 measurements", §III-A). Supports
// the average, 95th- and 99th-percentile statistics used across the
// paper's experiments.

#ifndef CEPSHED_RUNTIME_LATENCY_MONITOR_H_
#define CEPSHED_RUNTIME_LATENCY_MONITOR_H_

#include <cstddef>
#include <vector>

namespace cepshed {

/// \brief Which statistic over the sliding window defines mu(k).
enum class LatencyStat : int { kAverage, kP95, kP99 };

/// \brief Sliding-window latency statistic over per-event latencies.
class LatencyMonitor {
 public:
  struct Options {
    LatencyStat stat = LatencyStat::kAverage;
    /// Measurements in the sliding window.
    size_t window = 1000;
    /// Recompute cadence for percentile stats (events); averages are exact
    /// and O(1) per record.
    size_t refresh_every = 64;
  };

  /// Constructs a monitor with default options (average over 1000).
  LatencyMonitor();
  explicit LatencyMonitor(Options options);

  /// Records one per-event latency measurement.
  void Record(double latency);

  /// The current smoothed latency mu(k).
  double Current() const { return current_; }

  /// Exact statistic over all recorded measurements so far (used to
  /// establish the no-shedding baseline latency a bound is defined
  /// against).
  double OverallAverage() const;

  size_t Count() const { return count_; }
  void Reset();

 private:
  void Refresh();

  Options options_;
  std::vector<double> ring_;
  size_t head_ = 0;
  size_t filled_ = 0;
  size_t count_ = 0;
  double window_sum_ = 0.0;
  double total_sum_ = 0.0;
  size_t since_refresh_ = 0;
  double current_ = 0.0;
  mutable std::vector<double> scratch_;
};

}  // namespace cepshed

#endif  // CEPSHED_RUNTIME_LATENCY_MONITOR_H_
