// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/runtime/reshard_controller.h"

namespace cepshed {

int ReshardController::Decide(uint64_t seq, const Signals& sig, int live,
                              int effective_max) {
  const bool hot = sig.max_queue_fill >= opts_.queue_grow_fraction ||
                   sig.max_guard_level >= opts_.guard_hot_level;
  const bool idle = sig.max_queue_fill <= opts_.queue_shrink_fraction &&
                    sig.max_guard_level == 0;
  // The dead zone between hot and idle advances neither streak but resets
  // both: "sustained" means uninterrupted, exactly like the guard ladder.
  if (hot) {
    ++hot_streak_;
    idle_streak_ = 0;
  } else if (idle) {
    ++idle_streak_;
    hot_streak_ = 0;
  } else {
    hot_streak_ = 0;
    idle_streak_ = 0;
  }

  if (resized_once_ && seq - last_resize_seq_ < opts_.min_dwell) return 0;

  if (hot && hot_streak_ >= opts_.grow_after && live < effective_max) {
    hot_streak_ = 0;
    idle_streak_ = 0;
    resized_once_ = true;
    last_resize_seq_ = seq;
    return +1;
  }
  if (idle && idle_streak_ >= opts_.shrink_after && live > opts_.min_shards) {
    hot_streak_ = 0;
    idle_streak_ = 0;
    resized_once_ = true;
    last_resize_seq_ = seq;
    return -1;
  }
  return 0;
}

}  // namespace cepshed
