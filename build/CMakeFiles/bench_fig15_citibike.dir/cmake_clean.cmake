file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_citibike.dir/bench/bench_fig15_citibike.cpp.o"
  "CMakeFiles/bench_fig15_citibike.dir/bench/bench_fig15_citibike.cpp.o.d"
  "bench/bench_fig15_citibike"
  "bench/bench_fig15_citibike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_citibike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
