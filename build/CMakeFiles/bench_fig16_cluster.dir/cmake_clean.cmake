file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cluster.dir/bench/bench_fig16_cluster.cpp.o"
  "CMakeFiles/bench_fig16_cluster.dir/bench/bench_fig16_cluster.cpp.o.d"
  "bench/bench_fig16_cluster"
  "bench/bench_fig16_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
