// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Shedding-set selection as a knapsack variant (§IV-B of the paper):
// choose a subset D of items minimizing the total contribution (value)
// subject to the total consumption (weight) strictly exceeding the latency
// violation (capacity threshold). Provides an exact dynamic program, the
// greedy ratio approximation the paper sketches (§V-C), and a brute-force
// oracle for testing.

#ifndef CEPSHED_OPT_KNAPSACK_H_
#define CEPSHED_OPT_KNAPSACK_H_

#include <cstddef>
#include <vector>

namespace cepshed {

/// \brief One candidate item of the shedding set: a class of partial
/// matches with its relative contribution (recall we would lose) and
/// relative consumption (resources we would save).
struct KnapsackItem {
  double value = 0.0;   ///< Delta+ : relative contribution (loss if shed)
  double weight = 0.0;  ///< Delta- : relative consumption (saving if shed)
};

/// \brief Exact covering-knapsack solver by dynamic programming over a
/// discretized weight grid (`grid` buckets; error <= items/grid in weight).
/// Returns indices of the selected items; empty if the threshold cannot be
/// exceeded even by taking everything.
std::vector<size_t> SolveCoveringKnapsackDP(const std::vector<KnapsackItem>& items,
                                            double threshold, int grid = 1024);

/// \brief Greedy approximation: take items in increasing value/weight
/// ratio until the threshold is exceeded (the paper's §V-C strategy).
std::vector<size_t> SolveCoveringKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                                double threshold);

/// \brief Exhaustive oracle for small instances (n <= 24); used by tests.
std::vector<size_t> SolveCoveringKnapsackBrute(const std::vector<KnapsackItem>& items,
                                               double threshold);

/// Sum of values / weights over the selected indices.
double TotalValue(const std::vector<KnapsackItem>& items, const std::vector<size_t>& sel);
double TotalWeight(const std::vector<KnapsackItem>& items, const std::vector<size_t>& sel);

}  // namespace cepshed

#endif  // CEPSHED_OPT_KNAPSACK_H_
