// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/lab/hostile.h"

#include <algorithm>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/runtime/shard_runtime.h"

namespace cepshed {
namespace lab {

namespace {

/// Linear interpolation clamped to [0, 1] progress.
double Progress(size_t i, size_t begin, size_t end) {
  if (i <= begin || end <= begin) return i >= end ? 1.0 : 0.0;
  if (i >= end) return 1.0;
  return static_cast<double>(i - begin) / static_cast<double>(end - begin);
}

int LerpInt(int a, int b, double t) {
  return a + static_cast<int>(static_cast<double>(b - a) * t);
}

}  // namespace

EventStream GenerateDriftStream(const Schema& schema, const DriftOptions& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  const int c_type = schema.EventTypeId("C");
  std::vector<double> weights(4);

  for (size_t i = 0; i < options.num_events; ++i) {
    const double t = Progress(i, options.drift_begin, options.drift_end);
    for (int w = 0; w < 4; ++w) {
      weights[static_cast<size_t>(w)] =
          options.type_weights_start[w] +
          (options.type_weights_end[w] - options.type_weights_start[w]) * t;
    }
    const int type = static_cast<int>(rng.Categorical(weights));
    int v_lo = options.v_min;
    int v_hi = options.v_max;
    if (type == c_type) {
      v_lo = LerpInt(options.c_v_min_start, options.c_v_min_end, t);
      v_hi = LerpInt(options.c_v_max_start, options.c_v_max_end, t);
    }
    if (v_hi < v_lo) std::swap(v_lo, v_hi);
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(rng.UniformInt(1, options.num_ids));
    attrs[static_cast<size_t>(v_attr)] = Value(rng.UniformInt(v_lo, v_hi));
    const Timestamp ts =
        options.ts_origin + static_cast<Timestamp>(i) * options.event_gap;
    Status st = stream.Emit(type, ts, std::move(attrs));
    (void)st;
  }
  return stream;
}

Result<EventStream> GenerateBurstStream(const Schema& schema,
                                        const BurstOptions& options) {
  if (options.num_shards < 1 || options.target_shard < 0 ||
      options.target_shard >= options.num_shards) {
    return Status::InvalidArgument("burst generator: target_shard out of range");
  }
  FaultInjector anchors;
  CEPSHED_ASSIGN_OR_RETURN(anchors,
                           FaultInjector::Parse(options.anchor_schedule, options.seed));
  struct Window {
    uint64_t at;
    uint64_t count;
    double factor;
  };
  std::vector<Window> bursts;
  for (const FaultSpec& spec : anchors.specs()) {
    if (spec.kind != FaultKind::kBurst) continue;
    bursts.push_back({spec.at, spec.count, spec.factor});
  }
  if (bursts.empty()) {
    return Status::InvalidArgument(
        "burst generator: anchor schedule has no burst entry");
  }

  // The attack key set: IDs in [1, num_ids] that hash to the victim shard.
  // When the configured ID range misses the victim entirely (possible for
  // tiny ranges), scan upward until at least one key is found — ShardOfKey
  // spreads integers uniformly, so the expected scan is num_shards keys.
  std::vector<int64_t> hot_ids;
  std::vector<int64_t> all_ids;
  for (int64_t id = 1; id <= options.num_ids; ++id) {
    all_ids.push_back(id);
    if (ShardRuntime::ShardOfKey(Value(id), options.num_shards) ==
        options.target_shard) {
      hot_ids.push_back(id);
    }
  }
  for (int64_t id = options.num_ids + 1; hot_ids.empty(); ++id) {
    if (ShardRuntime::ShardOfKey(Value(id), options.num_shards) ==
        options.target_shard) {
      hot_ids.push_back(id);
    }
  }

  EventStream stream(&schema);
  Rng rng(options.seed);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  const std::vector<double> calm_weights(options.type_weights,
                                         options.type_weights + 4);
  const std::vector<double> burst_weights(options.burst_type_weights,
                                          options.burst_type_weights + 4);

  Timestamp ts = options.ts_origin;
  for (size_t i = 0; i < options.num_events; ++i) {
    double factor = 1.0;
    for (const Window& w : bursts) {
      if (i >= w.at && i < w.at + w.count) factor *= w.factor;
    }
    const bool in_burst = factor != 1.0;
    int64_t id;
    if (in_burst && rng.Bernoulli(options.burst_target_bias)) {
      id = hot_ids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(hot_ids.size()) - 1))];
    } else {
      id = all_ids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(all_ids.size()) - 1))];
    }
    const int type = static_cast<int>(
        rng.Categorical(in_burst ? burst_weights : calm_weights));
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(id);
    attrs[static_cast<size_t>(v_attr)] =
        Value(rng.UniformInt(options.v_min, options.v_max));
    Status st = stream.Emit(type, ts, std::move(attrs));
    (void)st;
    const Duration gap = std::max<Duration>(
        1, static_cast<Duration>(static_cast<double>(options.base_gap) /
                                 std::max(1.0, factor)));
    ts += gap;
  }
  return stream;
}

EventStream GenerateKleeneBomb(const Schema& schema,
                               const KleeneBombOptions& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int id_attr = schema.AttributeIndex("ID");
  const int v_attr = schema.AttributeIndex("V");
  const int a_type = schema.EventTypeId("A");
  const int b_type = schema.EventTypeId("B");
  const int c_type = schema.EventTypeId("C");

  int64_t run_id = 1;
  int64_t run_v = options.v_min;
  size_t run_pos = options.run_length;  // force a fresh run at event 0

  for (size_t i = 0; i < options.num_events; ++i) {
    if (run_pos >= options.run_length) {
      run_pos = 0;
      run_id = rng.UniformInt(1, options.num_ids);
      run_v = rng.UniformInt(options.v_min, options.v_max);
    }
    int type = a_type;
    int64_t v = run_v;
    // Completions carry the payloads the correlated-Kleene chain needs:
    // B.V = run V (the a.V = b[i].V leg) and C.V = 2x run V (a.V + c.V).
    if (rng.Bernoulli(options.b_prob)) {
      type = b_type;
    } else if (rng.Bernoulli(options.c_prob)) {
      type = c_type;
      v = 2 * run_v;
    } else {
      ++run_pos;
    }
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(id_attr)] = Value(run_id);
    attrs[static_cast<size_t>(v_attr)] = Value(v);
    const Timestamp ts =
        options.ts_origin + static_cast<Timestamp>(i) * options.event_gap;
    Status st = stream.Emit(type, ts, std::move(attrs));
    (void)st;
  }
  return stream;
}

}  // namespace lab
}  // namespace cepshed
