// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// CSV import/export of event streams: lets users replay their own traces
// (e.g., the real citibike trip data) through the engine, and lets the
// examples persist generated workloads.
//
// Format: header `type,timestamp,<attr1>,<attr2>,...` (attributes in
// schema order), one event per line, empty cells for null attributes.

#ifndef CEPSHED_WORKLOAD_CSV_H_
#define CEPSHED_WORKLOAD_CSV_H_

#include <iosfwd>
#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/result.h"

namespace cepshed {

/// Writes a stream as CSV.
Status WriteCsv(const EventStream& stream, std::ostream* out);
Status WriteCsvFile(const EventStream& stream, const std::string& path);

/// Reads a CSV produced by WriteCsv (or hand-made with the same header)
/// into a stream over `schema`. Attribute cells are parsed according to
/// the schema's declared types.
Result<EventStream> ReadCsv(const Schema& schema, std::istream* in);
Result<EventStream> ReadCsvFile(const Schema& schema, const std::string& path);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_CSV_H_
