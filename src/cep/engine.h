// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The CEP evaluation engine: automata-based matching under the exhaustive
// skip-till-any-match selection policy (the paper's f_Q). The engine
// accounts every unit of work it performs in abstract cost units, which
// drive the latency model and the cost model's resource consumption Omega.

#ifndef CEPSHED_CEP_ENGINE_H_
#define CEPSHED_CEP_ENGINE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cep/match.h"
#include "src/cep/nfa.h"
#include "src/cep/partial_match.h"
#include "src/cep/pred_vm.h"
#include "src/common/status.h"

namespace cepshed {

/// \brief Abstract work units charged per engine operation. One unit is
/// roughly one predicate-node evaluation; see DESIGN.md §3 on why latency
/// is accounted in deterministic cost units rather than wall time.
struct CostParams {
  double per_event_base = 1.0;
  double per_candidate = 0.25;
  double per_index_probe = 0.5;
  double per_clone_base = 1.0;
  double per_clone_event = 0.05;
  double per_create = 1.0;
  double per_witness_store = 0.25;
  double per_witness_check = 0.5;
  double per_match_emit = 1.0;
  double per_eviction = 0.1;
  /// Charged per live match examined by the periodic window sweep: the
  /// state-size-proportional bookkeeping (expiry checks, memory pressure)
  /// every stateful engine pays — the resource demand of Fig. 1.
  double per_sweep_scan = 0.05;
  /// Multiplier applied to predicate-evaluation work.
  double pred_weight = 1.0;
};

/// \brief Engine configuration.
struct EngineOptions {
  /// Use hash-join indexes derived from equality predicates (§VI-A).
  bool use_join_index = true;
  /// Also index computed expression keys (e.g. c.V = a.V + b.V keyed on
  /// the bound-side sum). Off by default: the paper's engine indexes
  /// attribute values only, and several experiments depend on expression
  /// predicates being evaluated per candidate match.
  bool index_expression_keys = false;
  /// Evaluate compiled-bytecode predicates (src/cep/pred_vm.h) instead of
  /// walking the Expr tree. Semantics and accounted cost units are
  /// identical (fuzzed in expr_vm_test); predicates the compiler refuses
  /// (aggregates) fall back to the interpreter per predicate either way.
  bool use_pred_vm = true;
  /// Events between window-expiry sweeps.
  int evict_interval = 64;
  /// Find expired matches through the store's hierarchical timing wheel —
  /// O(expired) per sweep — instead of scanning every live match
  /// (DESIGN.md §3.9). Kill timing, stats, and cost units are identical
  /// to the scan path (the sweep still books per_sweep_scan for every
  /// live match, from the O(1) live counters); the differential harness
  /// pins wheel-vs-scan byte equality. The scan path is retained for
  /// exactly that pinning.
  bool use_expiry_wheel = true;
  /// Strict contiguity: kill non-survivors off the last-extended
  /// generation list instead of scanning every live match per event.
  /// Same kill set as the scan, differentially pinned like the wheel.
  bool use_strict_gen_list = true;
  /// Compact the store once this fraction of entries is dead...
  double compact_dead_fraction = 0.25;
  /// ...and at least this many entries are dead.
  size_t compact_min_dead = 4096;
  CostParams costs;
};

/// \brief Partial-match state in flight between engines during an elastic
/// reshard. The matches keep their binding chains — migration moves roots,
/// it never deep-copies — and `arenas` pins every arena those chains may
/// reference (the donor's primary plus anything the donor itself adopted)
/// so the nodes outlive the donor engine regardless of destruction order.
struct MigratedState {
  std::vector<std::unique_ptr<PartialMatch>> regulars;
  std::vector<std::unique_ptr<PartialMatch>> witnesses;
  std::vector<std::shared_ptr<BindingArena>> arenas;
  /// Marginal-byte estimate of the moved matches (metrics only).
  size_t approx_bytes = 0;

  size_t size() const { return regulars.size() + witnesses.size(); }
  bool empty() const { return regulars.empty() && witnesses.empty(); }
};

/// \brief Aggregate engine counters.
struct EngineStats {
  uint64_t events_processed = 0;
  uint64_t pms_created = 0;
  uint64_t witnesses_created = 0;
  uint64_t matches_emitted = 0;
  uint64_t matches_vetoed = 0;
  uint64_t pms_evicted = 0;
  uint64_t predicate_evals = 0;
  uint64_t candidates_scanned = 0;
  uint64_t index_probes = 0;
  size_t peak_pms = 0;
  double total_cost = 0.0;
};

/// \brief Evaluates one compiled query over a stream, one event at a time.
///
/// Shedding integration points:
///  - state-based: tombstone partial matches via `store().Kill(...)` (or
///    the strategy helpers in src/shed); the engine skips dead matches.
///  - input-based: simply do not call Process for dropped events
///    (f_Q(⊥, P) = P in the paper's model).
///  - the classifier hook assigns each new partial match its cost-model
///    class; the created/match hooks feed offline estimation and online
///    adaptation.
///
/// Thread confinement: an Engine owns all of its mutable state (store,
/// indexes, stats, eval context, pending buffers) and holds only const
/// shared references (the Nfa and, through events, the Schema), so one
/// engine per thread needs no synchronization. This is what the sharded
/// runtime (src/runtime/shard_runtime.h) relies on; keep any future caches
/// either per-instance or immutable-after-construction.
class Engine {
 public:
  Engine(std::shared_ptr<const Nfa> nfa, EngineOptions options);

  /// Processes one event; appends any complete matches to *out. Returns the
  /// work performed in cost units (the per-event latency in the virtual
  /// cost clock).
  double Process(const EventPtr& event, std::vector<Match>* out);

  /// \name Batched execution (DESIGN.md §3.8)
  ///
  /// BeginBatch announces the next window of events about to go through
  /// Process (in order, possibly with shed/dropped gaps). The engine
  /// extracts the schema attributes referenced by batchable predicates —
  /// programs that are a single fused attr-vs-literal compare on the
  /// current event — into SoA columns and precomputes their verdicts in
  /// tight per-type loops the compiler auto-vectorizes. Process then
  /// consults the precomputed mask instead of dispatching into the VM,
  /// charging exactly the cost units and predicate_evals the scalar
  /// dispatch would have: results, stats, and cost are bit-identical to
  /// unbatched execution, which the differential harness pins.
  ///
  /// A BeginBatch supersedes any previous batch; EndBatch deactivates the
  /// mask consult early (Process still works, on the scalar path). Calling
  /// Process on events outside the announced batch is valid — the consult
  /// simply never matches them.
  ///@{
  void BeginBatch(const EventPtr* events, size_t n);
  void EndBatch();
  /// Convenience wrapper: BeginBatch, Process each event, EndBatch.
  /// Returns the summed cost units.
  double ProcessBatch(const EventPtr* events, size_t n,
                      std::vector<Match>* out);
  /// Number of batchable (mask-precomputable) predicate programs in the
  /// compiled query; 0 means BeginBatch is a no-op for it.
  size_t BatchablePrograms() const { return batch_plan_.size(); }
  ///@}

  /// The partial-match store (the evaluation state P(k)).
  PartialMatchStore& store() { return store_; }
  const PartialMatchStore& store() const { return store_; }

  const Nfa& nfa() const { return *nfa_; }
  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }

  /// Live regular partial matches.
  size_t NumPartialMatches() const { return store_.NumAlive(); }
  /// Live negation witnesses.
  size_t NumWitnesses() const { return store_.NumAliveWitnesses(); }

  /// Classifier invoked on every newly stored partial match; the returned
  /// label is written to PartialMatch::class_label.
  using PmClassifier = std::function<int32_t(const PartialMatch&)>;
  void set_classifier(PmClassifier fn) { classifier_ = std::move(fn); }

  /// Invoked after a partial match (or witness) is stored. `parent` is the
  /// match it extends, or nullptr for stream-created matches.
  using PmCreatedHook = std::function<void(const PartialMatch&, const PartialMatch* parent)>;
  void set_pm_created_hook(PmCreatedHook fn) { pm_created_hook_ = std::move(fn); }

  /// Invoked on every emitted complete match. `parent` is the partial
  /// match the final extension was derived from (nullptr for
  /// single-element patterns).
  using MatchHook = std::function<void(const Match&, const PartialMatch* parent)>;
  void set_match_hook(MatchHook fn) { match_hook_ = std::move(fn); }

  /// Invoked whenever a stored partial match is considered as a transition
  /// candidate, with the work (cost units) spent on it for this event —
  /// the recurring resource consumption the cost model's Gamma- measures.
  /// Only wired during offline estimation; adds overhead when set.
  using PmProbedHook = std::function<void(const PartialMatch&, double cost, Timestamp now)>;
  void set_pm_probed_hook(PmProbedHook fn) { pm_probed_hook_ = std::move(fn); }

  /// Creation-time state filter: invoked on every new (classified) partial
  /// match; returning true discards it immediately instead of storing it.
  /// This realizes the paper's formal model, where rho_S(P(k)) applies at
  /// every evaluation step — a shedding set stays in force until cleared.
  using CreationFilter = std::function<bool(const PartialMatch&)>;
  void set_creation_filter(CreationFilter fn) { creation_filter_ = std::move(fn); }

  /// Utility score of a partial match for emergency eviction ordering
  /// (higher = keep longer). Typically bound to the cost model's
  /// contribution estimate; see DefaultPmUtility for the untrained
  /// fallback.
  using PmUtilityFn = std::function<double(const PartialMatch&)>;

  /// Untrained fallback utility: completion progress first (a match one
  /// bind away from emitting embodies more sunk work and a higher
  /// completion chance than a fresh one), bound-event count second.
  static double DefaultPmUtility(const PartialMatch& pm) {
    return static_cast<double>(pm.state) +
           0.001 * static_cast<double>(pm.Length());
  }

  /// Emergency state eviction for the overload guard: tombstones up to
  /// `max_kill` live *regular* partial matches in increasing utility order
  /// (ties broken newest-first), stopping early once `min_bytes_freed`
  /// estimated bytes are reclaimed (0 = no byte goal). Negation witnesses
  /// are never touched — killing a witness could un-veto a match and
  /// invent results a fault-free run would not produce. A null `utility`
  /// uses DefaultPmUtility. Returns the number killed (also counted in
  /// stats().pms_evicted).
  size_t ShedLowestUtility(size_t max_kill, size_t min_bytes_freed,
                           const PmUtilityFn& utility = nullptr);

  /// Estimated bytes held by live partial matches and witnesses.
  size_t ApproxStateBytes() const { return store_.ApproxLiveBytes(); }

  /// Moves every live partial match and witness satisfying `pred` out of
  /// the engine, for adoption by another shard's engine. O(1) per match in
  /// chain length: roots move, chains stay where they were allocated.
  /// Indexes are rebuilt and the flatten cache dropped (its raw event
  /// pointers would otherwise dangle into chains another engine now owns).
  /// Caller-side thread contract: the engine must be quiescent (this is
  /// the sealed-and-drained phase of the migration protocol).
  MigratedState ExtractPartialMatches(
      const std::function<bool(const PartialMatch&)>& pred);

  /// Adopts matches extracted from another engine. Each match receives a
  /// fresh id from this engine's sequence (donor ids could collide with
  /// resident ones, and the flatten cache keys on id); lineage does not
  /// cross engines, so parent_id is cleared. Witness buckets are re-sorted
  /// by last_ts — the order IsVetoed's binary search depends on — and the
  /// join indexes rebuilt. Same quiescence contract as extraction.
  void AdoptPartialMatches(MigratedState state);

  /// Current flatten-cache population (bounded by kFlatCacheMaxEntries
  /// with wholesale clearing; exposed for the soak harness's obs gauges).
  size_t FlatCacheSize() const { return flat_cache_.size(); }

  /// Forces an expiry sweep + compaction + index rebuild now. Uses the
  /// query's count-based window when one is declared (matching the
  /// per-event sweep) instead of misreading the count as a duration.
  void Vacuum(Timestamp now);

  /// Rebuilds the join indexes from the live store contents (required
  /// after an external compaction).
  void RebuildIndexes();

  /// Clears all evaluation state and statistics (between experiment runs).
  void Reset();

 private:
  /// Hash index over stored partial matches for one transition family.
  struct HashIndex {
    bool enabled = false;
    const JoinIndexSpec* spec = nullptr;
    std::unordered_map<Value, std::vector<PartialMatch*>, ValueHash> map;
    std::vector<PartialMatch*> unkeyed;

    void Clear() {
      map.clear();
      unkeyed.clear();
    }
  };

  /// Per-state runtime indexes.
  struct StateIndexes {
    /// Matches at this state with an empty in-progress component
    /// (candidates for a first bind).
    HashIndex fresh;
    /// Kleene: matches with >= 1 event in the open component
    /// (candidates for extension).
    HashIndex ext;
    /// Matches at the previous state eligible to proceed into this one
    /// (previous component is Kleene and has reached min_reps).
    HashIndex proceed;
  };

  void BuildIndexLayout();
  void IndexInsert(PartialMatch* pm);
  void IndexAdd(HashIndex* index, PartialMatch* pm, const Value& key);
  Value BuildKey(const HashIndex& index, const PartialMatch& pm);

  void FillContext(const PartialMatch* pm, const Event* current, int current_elem);
  bool EvalPreds(const std::vector<const CompiledPredicate*>& preds, double* cost);

  /// One batchable predicate: a VM program that is a single fused
  /// attr-vs-literal compare whose load always reads the current event
  /// when evaluated with current_elem == elem (selector kSingle/kIterCurr/
  /// kLast). Collected once at construction.
  struct BatchProgram {
    int prog;                 ///< VM program index
    int16_t elem;             ///< pattern element the load is anchored to
    int16_t attr;             ///< schema attribute read from the event
    CmpOp op;
    VmSlot constant;
  };
  void BuildBatchPlan();
  void ComputeBatchMasks();

  /// The match's bindings in stream order, flattened once per match and
  /// memoized. Binding chains are immutable after construction and match
  /// ids are unique per engine lifetime, so a cache hit is always valid;
  /// the cache is wholesale-cleared when it outgrows its bound and on
  /// Reset(). Per-instance state — see the thread-confinement note above.
  const std::vector<const Event*>& FlatEvents(const PartialMatch* pm);

  /// Tries to bind `event` into slot `state` of `pm` (pm may be at `state`
  /// or, for proceed transitions, at state-1). On success the clone is
  /// queued and any complete match emitted; returns whether the bind
  /// succeeded (used by the selective policies).
  bool TryBind(PartialMatch* pm, int state, const EventPtr& event, bool is_proceed,
               double* cost, std::vector<Match>* out);

  void EmitMatch(const PartialMatch& closed, const PartialMatch* parent,
                 const EventPtr& last_event, double* cost, std::vector<Match>* out);
  bool IsVetoed(const Match& match, double* cost);

  void StorePending(std::vector<Match>* out, double* cost);

  std::shared_ptr<const Nfa> nfa_;
  EngineOptions options_;
  PartialMatchStore store_;
  std::vector<StateIndexes> indexes_;
  EngineStats stats_;
  uint64_t next_pm_id_ = 1;
  int events_since_evict_ = 0;
  /// Sequence number of the latest processed event, so Vacuum can apply
  /// count-window expiry with the same semantics as the per-event sweep.
  uint64_t last_seq_ = 0;
  EvalContext ctx_;
  /// Compiled predicate programs (null when use_pred_vm is off); owned by
  /// the shared Nfa. The register file vm_ctx_ is per-engine mutable state,
  /// invalidated whenever ctx_ changes.
  const PredVmModule* vm_ = nullptr;
  PredVmContext vm_ctx_;
  /// True when the query contains an aggregate predicate: evaluation then
  /// needs full event spans per binding, so FillContext materializes the
  /// flattened view. All other queries evaluate off the chain's slot edges
  /// in O(#slots) per candidate with no flatten at all.
  bool span_context_ = false;
  /// Flatten-on-demand cache: match id -> bindings in stream order (raw
  /// pointers; the chain nodes own the events). Bounded by
  /// kFlatCacheMaxEntries with wholesale clearing.
  std::unordered_map<uint64_t, std::vector<const Event*>> flat_cache_;
  static constexpr size_t kFlatCacheMaxEntries = 4096;
  /// Scratch raw-pointer view of a complete match's events for negation
  /// checks (ElemBinding spans raw pointers).
  std::vector<const Event*> veto_scratch_;
  std::vector<std::unique_ptr<PartialMatch>> pending_;
  std::vector<const PartialMatch*> pending_parents_;
  /// Batched-execution state (see BeginBatch). The plan is fixed at
  /// construction; everything else is per-batch scratch, reused across
  /// batches. batch_events_ holds raw pointers used only for identity
  /// comparison against ctx_.current (never dereferenced after
  /// ComputeBatchMasks returns), so the caller's buffer may recycle the
  /// EventPtrs while a batch is still active.
  /// Strict-contiguity generation tracking (options_.use_strict_gen_list):
  /// strict_gen_ holds every regular match stored by the previous event
  /// (possibly tombstoned since by shedders — the kill loop checks the
  /// flag), which under strict contiguity is exactly the live set the
  /// post-event scan would walk. strict_next_gen_ collects this event's
  /// stored matches and becomes the next generation. Raw pointers are kept
  /// valid by rebuilding the list wherever indexes are rebuilt (the same
  /// compaction events that invalidate index pointers invalidate these).
  bool strict_gen_enabled_ = false;
  std::vector<PartialMatch*> strict_gen_;
  std::vector<PartialMatch*> strict_next_gen_;
  /// Distinct probe attributes of enabled indexes, and the per-event
  /// hoisted attribute values (indexed by attribute id). Event::attr
  /// returns a reference into the event, so the hoist replaces a
  /// per-state-per-event deep Value copy with one pointer read.
  std::vector<int> probe_attrs_;
  std::vector<const Value*> probe_keys_;
  std::vector<BatchProgram> batch_plan_;
  std::vector<int> batch_plan_of_prog_;  ///< prog -> plan index + 1; 0 = none
  std::vector<const Event*> batch_events_;
  std::vector<std::vector<uint8_t>> batch_masks_;  ///< [plan][event] verdicts
  size_t batch_n_ = 0;       ///< 0 = no batch active
  size_t batch_cursor_ = 0;  ///< monotone scan position within the batch
  int batch_cur_ = -1;       ///< batch index of the event Process is handling
  // SoA column scratch for one plan attribute.
  std::vector<int64_t> batch_col_i_;
  std::vector<double> batch_col_d_;
  std::vector<uint8_t> batch_col_tag_;
  PmClassifier classifier_;
  PmCreatedHook pm_created_hook_;
  MatchHook match_hook_;
  PmProbedHook pm_probed_hook_;
  CreationFilter creation_filter_;
};

}  // namespace cepshed

#endif  // CEPSHED_CEP_ENGINE_H_
