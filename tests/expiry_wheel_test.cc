// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Differential pinning of the deadline-ordered expiry path (DESIGN.md
// §3.9). Two layers:
//
//  1. Store-level randomized property: against a brute-force oracle (the
//     definitional Expired/ExpiredByCount predicates over every live
//     match), the wheel's ReapExpired must kill exactly the expired set —
//     through random interleavings of adds (in-order, out-of-order, and
//     future anchors), shedder kills, ExtractIf migrations into a second
//     store, compactions, and clock advances of every size (including
//     multi-level jumps and zero-width rechecks). The wheel-occupancy
//     invariant (entries == live matches + witnesses) holds throughout.
//
//  2. Engine-level: a wheel engine and a scan engine fed the same stream
//     — with deterministic state shedding, periodic Vacuums, aggressive
//     compaction, and a mid-stream extract/adopt migration episode — must
//     produce byte-identical matches and stats (every counter, peak_pms,
//     and total cost units) across time windows, count windows, Kleene
//     closure, negation witnesses, and all selection policies (strict
//     contiguity additionally toggles the generation-list fast path).

#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/cep/engine.h"
#include "src/cep/match.h"
#include "src/cep/nfa.h"
#include "src/cep/partial_match.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

using cepshed::testing::MakeAbcdSchema;
using cepshed::testing::MakeEvent;
using cepshed::testing::MakeQ1;

// ---------------------------------------------------------------------------
// Store-level randomized property.

constexpr int kNumStates = 3;

std::set<const PartialMatch*> LiveSet(PartialMatchStore* store) {
  std::set<const PartialMatch*> live;
  store->ForEachAlive([&](PartialMatch* pm) { live.insert(pm); });
  store->ForEachAliveWitness([&](PartialMatch* pm) { live.insert(pm); });
  return live;
}

/// Drives one store pair (donor + migration recipient) through random
/// operations, checking every reap against the brute-force oracle.
/// `count_mode` switches between time windows and count windows.
void RunStoreProperty(bool count_mode, uint64_t seed) {
  SCOPED_TRACE(std::string(count_mode ? "count" : "time") + " seed=" +
               std::to_string(seed));
  const Duration window = 400;
  const uint64_t count_window = 350;

  PartialMatchStore donor(kNumStates, kNumStates);
  PartialMatchStore recipient(kNumStates, kNumStates);
  donor.ConfigureExpiry(count_mode ? 0 : window, count_mode ? count_window : 0,
                        /*use_wheel=*/true);
  recipient.ConfigureExpiry(count_mode ? 0 : window,
                            count_mode ? count_window : 0, /*use_wheel=*/true);

  std::mt19937_64 rng(seed);
  // A negative starting clock exercises the order-preserving signed→
  // unsigned key flip for time windows.
  int64_t clock = count_mode ? 0 : -5000;
  uint64_t seq_clock = 0;
  uint64_t next_id = 1;
  uint64_t reaped_donor = 0;
  uint64_t reaped_recipient = 0;

  auto expired = [&](const PartialMatch& pm) {
    return count_mode ? pm.ExpiredByCount(seq_clock, count_window)
                      : pm.Expired(clock, window);
  };

  auto check_occupancy = [&](PartialMatchStore* store) {
    EXPECT_EQ(store->WheelEntries(),
              store->NumAlive() + store->NumAliveWitnesses());
  };

  auto add_one = [&](PartialMatchStore* store) {
    auto pm = std::make_unique<PartialMatch>();
    pm->id = next_id++;
    pm->state = static_cast<int>(rng() % kNumStates);
    // Anchors scatter around the clock: behind it (including far enough
    // behind to be born expired — the overdue path), at it, and ahead of
    // it (out-of-order streams deliver anchors from the future too).
    const int64_t offset = static_cast<int64_t>(rng() % 1600) - 1100;
    pm->start_ts = clock + offset;
    pm->last_ts = pm->start_ts;
    // Count anchors only scatter backwards: stream positions are monotone,
    // so the engine can never store a match anchored ahead of the current
    // seq (and ExpiredByCount's unsigned subtraction defines that regime
    // as already expired — unreachable, so not part of the contract).
    const uint64_t back = rng() % 1600;
    pm->start_seq = seq_clock - (back < seq_clock ? back : seq_clock);
    if (rng() % 4 == 0) {
      pm->is_witness = true;
      pm->negated_elem = static_cast<int>(rng() % kNumStates);
      store->AddWitness(std::move(pm));
    } else {
      store->Add(std::move(pm));
    }
  };

  auto reap_and_check = [&](PartialMatchStore* store, uint64_t* reaped_accum) {
    const std::set<const PartialMatch*> before = LiveSet(store);
    std::set<const PartialMatch*> expect;
    for (const PartialMatch* pm : before) {
      if (expired(*pm)) expect.insert(pm);
    }
    const size_t n = store->ReapExpired(clock, seq_clock);
    EXPECT_EQ(n, expect.size());
    const std::set<const PartialMatch*> after = LiveSet(store);
    EXPECT_EQ(after.size(), before.size() - expect.size());
    for (const PartialMatch* pm : expect) {
      EXPECT_EQ(after.count(pm), 0u) << "expired match survived the reap";
    }
    for (const PartialMatch* pm : after) {
      EXPECT_EQ(expect.count(pm), 0u);
      EXPECT_EQ(before.count(pm), 1u) << "reap resurrected a match";
    }
    *reaped_accum += n;
    EXPECT_EQ(store->ExpiryReapedTotal(), *reaped_accum);
    check_occupancy(store);
  };

  for (int step = 0; step < 4000; ++step) {
    const uint64_t op = rng() % 100;
    if (op < 50) {
      add_one(rng() % 5 == 0 ? &recipient : &donor);
    } else if (op < 62) {
      // Shedder kill: the store must unlink the victim from the wheel.
      PartialMatchStore* store = rng() % 2 == 0 ? &donor : &recipient;
      std::vector<PartialMatch*> live;
      store->ForEachAlive([&](PartialMatch* pm) { live.push_back(pm); });
      store->ForEachAliveWitness([&](PartialMatch* pm) { live.push_back(pm); });
      if (!live.empty()) store->Kill(live[rng() % live.size()]);
    } else if (op < 72) {
      // Advance the clocks without reaping: expired matches accumulate.
      clock += static_cast<int64_t>(rng() % 300);
      seq_clock += rng() % 200;
    } else if (op < 86) {
      // Reap at the current clocks (zero-width advances recheck only the
      // overdue list — they must still find matches parked there).
      reap_and_check(&donor, &reaped_donor);
      reap_and_check(&recipient, &reaped_recipient);
    } else if (op < 92) {
      // Migration: extract a content-keyed subset from the donor and adopt
      // it into the recipient, which re-enqueues on its own wheel.
      const uint64_t residue = rng() % 3;
      std::vector<std::unique_ptr<PartialMatch>> regulars;
      std::vector<std::unique_ptr<PartialMatch>> witnesses;
      donor.ExtractIf(
          [&](const PartialMatch& pm) { return pm.id % 3 == residue; },
          &regulars, &witnesses);
      for (auto& pm : regulars) recipient.Add(std::move(pm));
      for (auto& pm : witnesses) recipient.AddWitness(std::move(pm));
      check_occupancy(&donor);
      check_occupancy(&recipient);
    } else if (op < 97) {
      // Wheel state must survive compaction: live matches never move as
      // objects, so their intrusive links stay valid.
      PartialMatchStore* store = rng() % 2 == 0 ? &donor : &recipient;
      const size_t entries = store->WheelEntries();
      store->Compact();
      EXPECT_EQ(store->WheelEntries(), entries);
      check_occupancy(store);
    } else {
      // Multi-level jump: crosses coarse wheel levels in one advance.
      clock += static_cast<int64_t>(rng() % 100000);
      seq_clock += rng() % 70000;
      reap_and_check(&donor, &reaped_donor);
      reap_and_check(&recipient, &reaped_recipient);
    }
    check_occupancy(&donor);
    check_occupancy(&recipient);
  }

  // Drain: after a jump past every possible anchor, nothing survives.
  clock += 1 << 21;
  seq_clock += 1 << 21;
  reap_and_check(&donor, &reaped_donor);
  reap_and_check(&recipient, &reaped_recipient);
  EXPECT_EQ(donor.NumAlive() + donor.NumAliveWitnesses(), 0u);
  EXPECT_EQ(recipient.NumAlive() + recipient.NumAliveWitnesses(), 0u);
  EXPECT_EQ(donor.WheelEntries(), 0u);
  EXPECT_EQ(recipient.WheelEntries(), 0u);
}

TEST(ExpiryWheelStore, RandomizedTimeWindowMatchesOracle) {
  for (uint64_t seed : {11u, 29u, 73u}) RunStoreProperty(false, seed);
}

TEST(ExpiryWheelStore, RandomizedCountWindowMatchesOracle) {
  for (uint64_t seed : {13u, 41u, 97u}) RunStoreProperty(true, seed);
}

TEST(ExpiryWheelStore, DeadlineKeyIsMonotoneAcrossSignFlip) {
  PartialMatchStore store(1, 1);
  store.ConfigureExpiry(/*window=*/100, /*count_window=*/0, true);
  PartialMatch a, b, c;
  a.start_ts = -500;
  b.start_ts = -1;
  c.start_ts = 500;
  EXPECT_LT(store.DeadlineKey(a), store.DeadlineKey(b));
  EXPECT_LT(store.DeadlineKey(b), store.DeadlineKey(c));
}

// ---------------------------------------------------------------------------
// Engine-level wheel-vs-scan byte equality.

void ExpectEngineStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.pms_created, b.pms_created);
  EXPECT_EQ(a.witnesses_created, b.witnesses_created);
  EXPECT_EQ(a.matches_emitted, b.matches_emitted);
  EXPECT_EQ(a.matches_vetoed, b.matches_vetoed);
  EXPECT_EQ(a.pms_evicted, b.pms_evicted);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.candidates_scanned, b.candidates_scanned);
  EXPECT_EQ(a.index_probes, b.index_probes);
  EXPECT_EQ(a.peak_pms, b.peak_pms);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

void ExpectMatchesIdentical(const std::vector<Match>& a,
                            const std::vector<Match>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].detected_at, b[i].detected_at);
    EXPECT_EQ(a[i].Key(), b[i].Key());
  }
}

uint64_t MixId(uint64_t seed, uint64_t id) {
  uint64_t h = seed ^ (id * 0x9E3779B97F4A7C15ull);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 29;
  return h;
}

/// A hostile ABCD stream: small ID universe (dense joins), jittered
/// inter-event gaps so windows expire continuously, occasional timestamp
/// regressions (out-of-order arrival) to exercise the overdue path.
std::vector<EventPtr> MakeHostileStream(const Schema& schema, size_t n,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<EventPtr> events;
  events.reserve(n);
  const char* kTypes[] = {"A", "A", "A", "B", "C", "D"};
  Timestamp ts = 0;
  for (size_t i = 0; i < n; ++i) {
    ts += static_cast<Timestamp>(rng() % 40);
    Timestamp event_ts = ts;
    if (rng() % 16 == 0 && ts > 200) event_ts = ts - 150;  // late arrival
    events.push_back(MakeEvent(schema, kTypes[rng() % 6], event_ts, i,
                               static_cast<int64_t>(rng() % 6),
                               static_cast<int64_t>(rng() % 8)));
  }
  return events;
}

struct EngineRunConfig {
  bool use_wheel = true;
  bool use_strict_gen_list = true;
  bool shed = true;
  bool vacuum = true;
  bool force_compaction = true;
};

struct EngineRunResult {
  std::vector<Match> matches;
  EngineStats stats;
};

EngineRunResult RunEngine(const Schema& schema, const Query& query,
                          const std::vector<EventPtr>& events,
                          const EngineRunConfig& config) {
  auto nfa = Nfa::Compile(query, &schema);
  EXPECT_TRUE(nfa.ok()) << nfa.status().message();
  EngineOptions opts;
  opts.use_expiry_wheel = config.use_wheel;
  opts.use_strict_gen_list = config.use_strict_gen_list;
  if (config.force_compaction) {
    opts.compact_min_dead = 8;
    opts.compact_dead_fraction = 0.05;
  }
  Engine engine(*nfa, opts);
  EngineRunResult run;
  size_t i = 0;
  for (const EventPtr& e : events) {
    engine.Process(e, &run.matches);
    ++i;
    if (config.shed && i % 97 == 0) {
      // Deterministic state shedding: both arms create matches in the
      // same order, so content-hashing the match id selects the same
      // victims — this is exactly what the equality under test implies.
      std::vector<PartialMatch*> victims;
      engine.store().ForEachAlive([&](PartialMatch* pm) {
        if (MixId(0xC0FFEEull, pm->id) % 8 == 0) victims.push_back(pm);
      });
      for (PartialMatch* pm : victims) engine.store().Kill(pm);
    }
    if (config.vacuum && i % 331 == 0) engine.Vacuum(e->timestamp());
  }
  run.stats = engine.stats();
  return run;
}

void ExpectWheelScanEqual(const Schema& schema, const Query& query,
                          const std::vector<EventPtr>& events,
                          bool shed = true) {
  for (const bool vacuum : {false, true}) {
    SCOPED_TRACE(std::string(vacuum ? "with" : "without") + " vacuum");
    EngineRunConfig wheel_cfg;
    wheel_cfg.shed = shed;
    wheel_cfg.vacuum = vacuum;
    EngineRunConfig scan_cfg = wheel_cfg;
    scan_cfg.use_wheel = false;
    scan_cfg.use_strict_gen_list = false;
    const EngineRunResult wheel = RunEngine(schema, query, events, wheel_cfg);
    const EngineRunResult scan = RunEngine(schema, query, events, scan_cfg);
    ASSERT_GT(wheel.stats.pms_evicted, 0u)
        << "degenerate run: nothing ever expired, the equality is vacuous";
    ExpectMatchesIdentical(wheel.matches, scan.matches);
    ExpectEngineStatsEqual(wheel.stats, scan.stats);
  }
}

class ExpiryWheelEngine : public ::testing::Test {
 protected:
  static Query ParseOrDie(const std::string& text) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return *q;
  }

  Schema schema_ = MakeAbcdSchema();
  std::vector<EventPtr> stream_ = MakeHostileStream(schema_, 2500, 77);
};

TEST_F(ExpiryWheelEngine, TimeWindowQ1) {
  ExpectWheelScanEqual(schema_, MakeQ1(/*window=*/Millis(2)), stream_);
}

TEST_F(ExpiryWheelEngine, CountWindow) {
  Query q = MakeQ1(Millis(8));
  q.count_window = 180;
  ExpectWheelScanEqual(schema_, q, stream_);
}

TEST_F(ExpiryWheelEngine, KleeneClosure) {
  ExpectWheelScanEqual(
      schema_,
      ParseOrDie("PATTERN SEQ(A a, A+{1,3} b[], B c) "
                 "WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 2ms"),
      stream_);
}

TEST_F(ExpiryWheelEngine, NegationWitnessesRideTheWheel) {
  ExpectWheelScanEqual(
      schema_,
      ParseOrDie("PATTERN SEQ(A a, !B b, C c) "
                 "WHERE a.ID = c.ID AND b.ID = a.ID WITHIN 2ms"),
      stream_);
}

TEST_F(ExpiryWheelEngine, SkipTillNextMatch) {
  Query q = MakeQ1(Millis(2));
  q.policy = SelectionPolicy::kSkipTillNextMatch;
  ExpectWheelScanEqual(schema_, q, stream_);
}

TEST_F(ExpiryWheelEngine, StrictContiguityAllFastPathCombinations) {
  // Strict contiguity has two independent fast paths (wheel, generation
  // list); every combination must match the double-scan baseline.
  Query q = ParseOrDie(
      "PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND a.ID = c.ID "
      "WITHIN 2ms");
  q.policy = SelectionPolicy::kStrictContiguity;
  EngineRunConfig base_cfg;
  base_cfg.use_wheel = false;
  base_cfg.use_strict_gen_list = false;
  const EngineRunResult base = RunEngine(schema_, q, stream_, base_cfg);
  for (const bool wheel : {false, true}) {
    for (const bool gen_list : {false, true}) {
      if (!wheel && !gen_list) continue;
      SCOPED_TRACE("wheel=" + std::to_string(wheel) +
                   " gen_list=" + std::to_string(gen_list));
      EngineRunConfig cfg;
      cfg.use_wheel = wheel;
      cfg.use_strict_gen_list = gen_list;
      const EngineRunResult run = RunEngine(schema_, q, stream_, cfg);
      ExpectMatchesIdentical(run.matches, base.matches);
      ExpectEngineStatsEqual(run.stats, base.stats);
    }
  }
}

// ---------------------------------------------------------------------------
// Migration episode: adopted matches must land on the recipient's wheel.

struct MigrationRunResult {
  std::vector<Match> donor_matches;
  std::vector<Match> recipient_matches;
  EngineStats donor_stats;
  EngineStats recipient_stats;
};

MigrationRunResult RunMigrationEpisode(const Schema& schema, const Query& query,
                                       const std::vector<EventPtr>& events,
                                       bool use_wheel) {
  auto nfa = Nfa::Compile(query, &schema);
  EXPECT_TRUE(nfa.ok()) << nfa.status().message();
  EngineOptions opts;
  opts.use_expiry_wheel = use_wheel;
  Engine donor(*nfa, opts);
  Engine recipient(*nfa, opts);
  const int id_attr = schema.AttributeIndex("ID");

  MigrationRunResult run;
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    donor.Process(events[i], &run.donor_matches);
  }
  // Seal-and-drain handover of the even-ID partition, mid-window: the
  // moved matches carry live deadlines the recipient must keep honoring.
  MigratedState moved = donor.ExtractPartialMatches([&](const PartialMatch& pm) {
    const Event* first = pm.EventAt(0);
    return first != nullptr && first->attr(id_attr).AsInt() % 2 == 0;
  });
  EXPECT_FALSE(moved.empty());
  recipient.AdoptPartialMatches(std::move(moved));
  for (size_t i = half; i < events.size(); ++i) {
    const bool even = events[i]->attr(id_attr).AsInt() % 2 == 0;
    Engine& owner = even ? recipient : donor;
    owner.Process(events[i],
                  even ? &run.recipient_matches : &run.donor_matches);
  }
  // Post-episode vacuums reap the stragglers on both wheels.
  donor.Vacuum(events.back()->timestamp());
  recipient.Vacuum(events.back()->timestamp());
  run.donor_stats = donor.stats();
  run.recipient_stats = recipient.stats();
  return run;
}

TEST_F(ExpiryWheelEngine, MigratedMatchesExpireOnRecipientWheel) {
  const Query q = MakeQ1(Millis(2));
  const MigrationRunResult wheel = RunMigrationEpisode(schema_, q, stream_, true);
  const MigrationRunResult scan = RunMigrationEpisode(schema_, q, stream_, false);
  ASSERT_GT(wheel.recipient_stats.pms_evicted, 0u)
      << "no adopted match ever expired — the migration leg is vacuous";
  ExpectMatchesIdentical(wheel.donor_matches, scan.donor_matches);
  ExpectMatchesIdentical(wheel.recipient_matches, scan.recipient_matches);
  ExpectEngineStatsEqual(wheel.donor_stats, scan.donor_stats);
  ExpectEngineStatsEqual(wheel.recipient_stats, scan.recipient_stats);
}

// ---------------------------------------------------------------------------
// Vacuum fast path: zero tombstones must skip compaction + index rebuild.

TEST_F(ExpiryWheelEngine, VacuumWithNoDeadIsANoOp) {
  // A window far longer than the stream: nothing expires, nothing is shed,
  // so the store holds zero tombstones at all times. The Kleene aggregate
  // makes the engine assemble spans through the flatten cache, whose
  // population is the tell-tale that RebuildIndexes did NOT run.
  const Query q = ParseOrDie(
      "PATTERN SEQ(A a, A+{1,2} b[], B c) "
      "WHERE a.ID = b[i].ID AND a.ID = c.ID AND SUM(b[].V) >= 0 "
      "WITHIN 1000000ms");
  auto nfa = Nfa::Compile(q, &schema_);
  ASSERT_TRUE(nfa.ok());
  Engine vacuumed(*nfa, EngineOptions{});
  Engine control(*nfa, EngineOptions{});

  std::vector<Match> vacuumed_matches;
  std::vector<Match> control_matches;
  const size_t half = 150;
  for (size_t i = 0; i < half; ++i) {
    vacuumed.Process(stream_[i], &vacuumed_matches);
    control.Process(stream_[i], &control_matches);
  }
  ASSERT_EQ(vacuumed.store().NumDead(), 0u);
  const std::set<const PartialMatch*> before = LiveSet(&vacuumed.store());
  ASSERT_FALSE(before.empty());
  const size_t flat_cache = vacuumed.FlatCacheSize();

  vacuumed.Vacuum(stream_[half - 1]->timestamp());

  // The fast path must leave everything untouched: no tombstones created,
  // the same live objects at the same addresses, and — the sharp
  // observable that compaction + rebuild were skipped — the flatten cache
  // still populated (RebuildIndexes would have dropped it).
  EXPECT_EQ(vacuumed.store().NumDead(), 0u);
  EXPECT_EQ(LiveSet(&vacuumed.store()), before);
  EXPECT_EQ(vacuumed.FlatCacheSize(), flat_cache);
  EXPECT_GT(flat_cache, 0u);

  // And the engine keeps evaluating correctly on the surviving indexes.
  for (size_t i = half; i < 300; ++i) {
    vacuumed.Process(stream_[i], &vacuumed_matches);
    control.Process(stream_[i], &control_matches);
  }
  ExpectMatchesIdentical(vacuumed_matches, control_matches);
  ExpectEngineStatsEqual(vacuumed.stats(), control.stats());
}

}  // namespace
}  // namespace cepshed
