# Empty dependencies file for bench_fig01_pm_growth.
# This may be replaced when dependencies are built.
