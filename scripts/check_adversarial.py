#!/usr/bin/env python3
"""CI gate: online adaptation must survive the hostile drift stream.

Reads the JSON written by bench_lab_adversarial (BENCH_lab.json), which
runs the hybrid strategy twice over the same drifting test stream — once
with the trained cost model frozen ("static") and once with online
adaptation on ("adaptive") — and records recall before and after the
drift window.

Three properties are gated:

  1. The drift generator actually hurts: the static arm's post-drift
     recall must sit at least --min-degradation below its own pre-drift
     recall. If this fails, the generator stopped being hostile and the
     other gates are vacuous.
  2. Adaptation closes the gap: adaptive post-drift recall must beat
     static post-drift recall by at least --min-separation.
  3. Adaptation works in absolute terms: adaptive post-drift recall must
     be at least --min-adaptive-recall.

Locally the arms land around static_post ~ 0.01 vs adaptive_post ~ 0.8;
the default thresholds trip long before the adaptation path stops
mattering while staying far from run-to-run noise.

Usage: check_adversarial.py BENCH_lab.json [--min-separation 0.3]
       [--min-degradation 0.3] [--min-adaptive-recall 0.5]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json")
    ap.add_argument("--min-separation", type=float, default=0.3)
    ap.add_argument("--min-degradation", type=float, default=0.3)
    ap.add_argument("--min-adaptive-recall", type=float, default=0.5)
    args = ap.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    arms = data.get("arms", {})
    if "static" not in arms or "adaptive" not in arms:
        print("error: missing static/adaptive arms in input", file=sys.stderr)
        return 2

    static, adaptive = arms["static"], arms["adaptive"]
    checks = [
        ("static degrades under drift",
         static["recall_pre"] - static["recall_post"], args.min_degradation),
        ("adaptive beats static post-drift",
         adaptive["recall_post"] - static["recall_post"], args.min_separation),
        ("adaptive post-drift recall",
         adaptive["recall_post"], args.min_adaptive_recall),
    ]

    print(f"static:   pre {static['recall_pre']:.4f}  "
          f"post {static['recall_post']:.4f}")
    print(f"adaptive: pre {adaptive['recall_pre']:.4f}  "
          f"post {adaptive['recall_post']:.4f}")

    ok = True
    for name, value, threshold in checks:
        verdict = "OK" if value >= threshold else "FAIL"
        if value < threshold:
            ok = False
        print(f"{name}: {value:.4f} (threshold {threshold:.2f}) [{verdict}]")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
