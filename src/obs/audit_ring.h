// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The shed-decision audit ring: a fixed-capacity, lock-free trail of the
// most recent shedding and degradation decisions — who shed what, which
// class, at what observed latency mu. Each slot is an independent seqlock
// of relaxed/acq-rel atomic words, so a single writer (the shard worker)
// never blocks and concurrent readers (the router, the exporter) either
// get a consistent entry or detect the overwrite and skip it. Recording
// allocates nothing; one entry is five atomic stores.

#ifndef CEPSHED_OBS_AUDIT_RING_H_
#define CEPSHED_OBS_AUDIT_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace cepshed {
namespace obs {

/// \brief What kind of decision an audit entry records.
enum class AuditKind : uint8_t {
  kDropEvent = 0,        ///< rho_I: input event discarded by a shedder
  kKillPm = 1,           ///< rho_S: partial match tombstoned
  kGuardTransition = 2,  ///< overload-guard ladder level change
  kGuardDrop = 3,        ///< rho_I decided by the overload guard
  kResize = 4,           ///< elastic reshard executed (live shard count change)
};

const char* AuditKindName(AuditKind kind);

/// \brief One decoded audit entry.
struct AuditEntry {
  uint64_t index = 0;      ///< global decision ordinal (monotonic per ring)
  int64_t timestamp = 0;   ///< event-time microseconds of the decision
  AuditKind kind = AuditKind::kDropEvent;
  uint8_t shard = 0;
  int32_t class_label = 0;  ///< event/pm class, or guard from|to<<8
  double mu = 0.0;          ///< smoothed latency at decision time
  uint64_t detail = 0;      ///< event seq / pms killed / transition count
};

/// \brief Lock-free bounded trail of the most recent decisions.
class AuditRing {
 public:
  static constexpr size_t kCapacity = 1024;  // power of two

  /// Records one decision (single writer per ring).
  void Record(AuditKind kind, uint8_t shard, int64_t timestamp,
              int32_t class_label, double mu, uint64_t detail) {
    const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[idx & (kCapacity - 1)];
    // Per-slot seqlock: odd marks "being written", the final even value
    // encodes the entry ordinal so readers can detect overwrites.
    s.seq.store(2 * idx + 1, std::memory_order_relaxed);
    s.timestamp.store(timestamp, std::memory_order_relaxed);
    s.packed.store(Pack(kind, shard, class_label), std::memory_order_relaxed);
    s.mu_bits.store(BitsOf(mu), std::memory_order_relaxed);
    s.detail.store(detail, std::memory_order_relaxed);
    s.seq.store(2 * idx + 2, std::memory_order_release);
  }

  /// Decisions recorded so far (>= entries retained).
  uint64_t TotalRecorded() const { return next_.load(std::memory_order_relaxed); }

  /// Returns the retained entries in decision order, skipping any slot
  /// overwritten mid-read.
  std::vector<AuditEntry> Snapshot() const {
    std::vector<AuditEntry> out;
    const uint64_t total = TotalRecorded();
    const uint64_t first = total > kCapacity ? total - kCapacity : 0;
    out.reserve(static_cast<size_t>(total - first));
    for (uint64_t idx = first; idx < total; ++idx) {
      const Slot& s = slots_[idx & (kCapacity - 1)];
      const uint64_t seq_before = s.seq.load(std::memory_order_acquire);
      if (seq_before != 2 * idx + 2) continue;  // overwritten or in flight
      AuditEntry e;
      e.index = idx;
      e.timestamp = s.timestamp.load(std::memory_order_relaxed);
      const uint64_t packed = s.packed.load(std::memory_order_relaxed);
      e.mu = DoubleOf(s.mu_bits.load(std::memory_order_relaxed));
      e.detail = s.detail.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq_before) continue;
      e.kind = static_cast<AuditKind>(packed & 0xff);
      e.shard = static_cast<uint8_t>((packed >> 8) & 0xff);
      e.class_label = static_cast<int32_t>(packed >> 32);
      out.push_back(e);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> timestamp{0};
    std::atomic<uint64_t> packed{0};
    std::atomic<uint64_t> mu_bits{0};
    std::atomic<uint64_t> detail{0};
  };

  static uint64_t Pack(AuditKind kind, uint8_t shard, int32_t class_label) {
    return static_cast<uint64_t>(static_cast<uint8_t>(kind)) |
           (static_cast<uint64_t>(shard) << 8) |
           (static_cast<uint64_t>(static_cast<uint32_t>(class_label)) << 32);
  }
  static uint64_t BitsOf(double v) {
    uint64_t bits;
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double DoubleOf(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Slot slots_[kCapacity];
  std::atomic<uint64_t> next_{0};
};

inline const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kDropEvent:
      return "drop_event";
    case AuditKind::kKillPm:
      return "kill_pm";
    case AuditKind::kGuardTransition:
      return "guard_transition";
    case AuditKind::kGuardDrop:
      return "guard_drop";
    case AuditKind::kResize:
      return "resize";
  }
  return "unknown";
}

}  // namespace obs
}  // namespace cepshed

#endif  // CEPSHED_OBS_AUDIT_RING_H_
