// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Unit tests for the sketch substrate: count-min, EWMA, P^2 quantile.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sketch/count_min.h"
#include "src/sketch/ewma.h"
#include "src/sketch/p2_quantile.h"

namespace cepshed {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch sketch(256, 4);
  Rng rng(1);
  std::vector<std::pair<uint64_t, double>> truth;
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 10000));
    const double count = static_cast<double>(rng.UniformInt(1, 10));
    sketch.Add(key, count);
    truth.push_back({key, count});
  }
  // Aggregate per key.
  std::map<uint64_t, double> agg;
  for (auto& [k, c] : truth) agg[k] += c;
  for (auto& [k, c] : agg) {
    EXPECT_GE(sketch.Estimate(k) + 1e-9, c);
  }
}

TEST(CountMinTest, AccurateForFewKeys) {
  CountMinSketch sketch(1024, 4);
  for (uint64_t k = 0; k < 10; ++k) sketch.Add(k, static_cast<double>(k + 1));
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(sketch.Estimate(k), static_cast<double>(k + 1));
  }
  EXPECT_DOUBLE_EQ(sketch.Estimate(999), 0.0);
}

TEST(CountMinTest, ScaleAndClear) {
  CountMinSketch sketch(64, 3);
  sketch.Add(7, 10.0);
  sketch.Scale(0.5);
  EXPECT_DOUBLE_EQ(sketch.Estimate(7), 5.0);
  sketch.Clear();
  EXPECT_DOUBLE_EQ(sketch.Estimate(7), 0.0);
}

TEST(EwmaTest, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, FoldsWithWeight) {
  Ewma e(0.5);
  e.Add(10.0);
  e.Add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);  // 0.5*10 + 0.5*20
  e.Add(15.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(EwmaTest, ResetForgets) {
  Ewma e(0.3);
  e.Add(5.0);
  e.Reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(P2QuantileTest, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.Add(3.0);
  q.Add(1.0);
  q.Add(2.0);
  EXPECT_DOUBLE_EQ(q.Value(), 2.0);
}

class P2QuantileParamTest : public ::testing::TestWithParam<double> {};

TEST_P(P2QuantileParamTest, ApproximatesUniformQuantile) {
  const double target = GetParam();
  P2Quantile estimator(target);
  Rng rng(42);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble(0, 100);
    estimator.Add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<size_t>(target * (all.size() - 1))];
  EXPECT_NEAR(estimator.Value(), exact, 2.5);
}

TEST_P(P2QuantileParamTest, ApproximatesExponentialQuantile) {
  const double target = GetParam();
  P2Quantile estimator(target);
  Rng rng(43);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Exponential(0.1);
    estimator.Add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<size_t>(target * (all.size() - 1))];
  // Heavier tail: allow 10% relative error.
  EXPECT_NEAR(estimator.Value(), exact, std::max(1.0, exact * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileParamTest,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

// Deterministic portable stream for the degenerate-input regressions; the
// standard-library distributions are not bit-stable across platforms.
uint64_t LcgNext(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

TEST(P2QuantileTest, ExactOnConstantStream) {
  for (double target : {0.5, 0.95, 0.99}) {
    P2Quantile estimator(target);
    for (int i = 0; i < 10000; ++i) estimator.Add(5.0);
    EXPECT_DOUBLE_EQ(estimator.Value(), 5.0) << "q=" << target;
  }
}

TEST(P2QuantileTest, TightOnNearConstantStream) {
  // Constant value with vanishing jitter: estimate must stay inside the
  // observed value range instead of interpolating away from it.
  for (double target : {0.5, 0.95, 0.99}) {
    P2Quantile estimator(target);
    uint64_t state = 7;
    for (int i = 0; i < 10000; ++i) {
      estimator.Add(5.0 + 1e-9 * static_cast<double>(LcgNext(&state) % 1000));
    }
    EXPECT_NEAR(estimator.Value(), 5.0, 1e-5) << "q=" << target;
  }
}

// Regression for marker degeneration on atomic (discrete-valued)
// distributions. A 70/30 mix of the atoms {1, 1e6} has exact median 1.0, but
// the textbook P^2 updates starve the middle marker on tied heights and then
// interpolate it into the empty (1, 1e6) gap: the pre-fix estimator reports
// ~20+ on this stream. The hardened updates keep the estimate on the
// dominant atom (observed ~3 across seeds/lengths; 10.0 is the safety bound).
TEST(P2QuantileTest, StaysOnAtomForBimodalGapStream) {
  P2Quantile estimator(0.5);
  uint64_t state = 99;
  for (int i = 0; i < 30000; ++i) {
    estimator.Add(LcgNext(&state) % 10 < 7 ? 1.0 : 1e6);
  }
  EXPECT_LT(estimator.Value(), 10.0);
  EXPECT_GE(estimator.Value(), 1.0);
}

TEST(P2QuantileTest, HeavyTailedParetoWithinRelativeTolerance) {
  // Pareto(alpha=1.5) via inverse transform on a deterministic LCG stream.
  for (double target : {0.5, 0.9, 0.95}) {
    P2Quantile estimator(target);
    uint64_t state = 11;
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
      const double u =
          (static_cast<double>(LcgNext(&state) % 1000000) + 0.5) / 1000000.0;
      const double v = std::pow(1.0 - u, -1.0 / 1.5);
      estimator.Add(v);
      all.push_back(v);
    }
    std::sort(all.begin(), all.end());
    const double exact = all[static_cast<size_t>(target * (all.size() - 1))];
    EXPECT_NEAR(estimator.Value(), exact, std::max(0.2, exact * 0.15))
        << "q=" << target;
  }
}

TEST(P2QuantileTest, MonotoneMarkerInvariant) {
  // After the clamp hardening the estimate can never escape the observed
  // min/max, whatever the input shape.
  P2Quantile estimator(0.9);
  uint64_t state = 3;
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double v = static_cast<double>(LcgNext(&state) % 7);
    estimator.Add(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    if (i >= 5) {
      EXPECT_GE(estimator.Value(), lo);
      EXPECT_LE(estimator.Value(), hi);
    }
  }
}

}  // namespace
}  // namespace cepshed
