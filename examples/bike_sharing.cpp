// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Bike-sharing example (the paper's §II-A urban-transportation scenario and
// Listing 1): detect 'hot paths' — several subsequent trips of the same
// bike, chained station to station, ending at one of the hot stations —
// over a rush-hour-spiked trip stream, and keep the detection latency
// bounded with hybrid load shedding when the rush hour hits.
//
//   $ ./examples/bike_sharing

#include <cstdio>

#include "src/runtime/experiment.h"
#include "src/workload/citibike.h"
#include "src/workload/queries.h"

using namespace cepshed;

int main() {
  const Schema schema = MakeCitibikeSchema();
  CitibikeOptions gen;
  gen.num_events = 20000;
  gen.seed = 7;
  const EventStream train = GenerateCitibike(schema, gen);
  gen.seed = 8;
  const EventStream rush_day = GenerateCitibike(schema, gen);

  Result<Query> query = queries::CitibikeHotPaths(/*min_path=*/5, /*max_path=*/8);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query (Listing 1): %s\n\n", query->ToString().c_str());

  ExperimentHarness harness(&schema, *query, HarnessOptions{});
  if (Status st = harness.Prepare(train, rush_day); !st.ok()) {
    std::fprintf(stderr, "prepare error: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("Exhaustive processing finds %zu hot paths; p99 latency %.0f units.\n",
              harness.truth().size(), harness.BaselineLatency(LatencyStat::kP99));
  std::printf("Rush hours blow up the partial-match state (peak %zu).\n\n",
              harness.truth_run().engine_stats.peak_pms);

  // Operate at 40% of the exhaustive p99 latency — rush hours now force
  // best-effort processing.
  std::printf("%-8s %8s %12s %12s %12s\n", "strategy", "recall", "throughput",
              "dropped", "shed PMs");
  for (StrategyKind kind :
       {StrategyKind::kRI, StrategyKind::kSS, StrategyKind::kHybrid}) {
    const ExperimentResult r = harness.RunBound(kind, 0.4, LatencyStat::kP99);
    std::printf("%-8s %7.1f%% %9.0f/s %12llu %12llu\n", r.name.c_str(),
                100.0 * r.quality.recall, r.throughput_eps,
                static_cast<unsigned long long>(r.raw.dropped_events),
                static_cast<unsigned long long>(r.raw.shed_pms));
  }
  std::printf(
      "\nHybrid shedding keeps the most hot paths within the latency bound:\n"
      "the cost model learns which chains can still reach stations {7,8,9}.\n");
  return 0;
}
