// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 6 of the paper: how well is the data to shed selected? Fixed
// shedding ratios 10%-90%; (a)+(b) input-based strategies RI, SI, HyI;
// (c)+(d) state-based strategies RS, SS, HyS; recall and throughput.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Ds1Options gen;
  gen.num_events = 30000;
  auto exp = PrepareDs1(*queries::Q1("8ms"), gen);

  Header("Fig. 6a+6b", "input-based selection at fixed shedding ratios (DS1/Q1)",
         kResultColumns);
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (StrategyKind kind :
         {StrategyKind::kRI, StrategyKind::kSI, StrategyKind::kHyI}) {
      PrintResultRow(std::to_string(ratio).substr(0, 3),
                     exp.harness->RunFixed(kind, ratio));
    }
  }

  Header("Fig. 6c+6d", "state-based selection at fixed shedding ratios (DS1/Q1)",
         kResultColumns);
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (StrategyKind kind :
         {StrategyKind::kRS, StrategyKind::kSS, StrategyKind::kHyS}) {
      PrintResultRow(std::to_string(ratio).substr(0, 3),
                     exp.harness->RunFixed(kind, ratio));
    }
  }
  return 0;
}
