// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Offline estimation of the cost model (§V-B): replay a historic stream
// prefix through the engine with lineage hooks, recording for every
// partial match its contribution Gamma+ (complete matches derived from it)
// and consumption Gamma- (resource cost Omega of matches derived from it),
// bucketed by the age (time slice) at which each derivation materialized.
// The same replay also yields the per-type selectivity statistics the
// SI/SS baseline strategies use.
//
// Omega is denominated in Expr::Eval's abstract work units. The replay
// engine may evaluate predicates through the bytecode VM
// (EngineOptions::use_pred_vm, on by default); the VM charges identical
// units by contract, so estimates recorded here transfer to production
// engines regardless of which evaluator either side runs.

#ifndef CEPSHED_SHED_OFFLINE_ESTIMATOR_H_
#define CEPSHED_SHED_OFFLINE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cep/nfa.h"
#include "src/cep/stream.h"
#include "src/cep/engine.h"
#include "src/common/result.h"

namespace cepshed {

/// \brief Lineage record of one partial match observed during replay.
struct PmRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  int state = 0;
  /// Predictor variables for the match classifier: the query-predicate
  /// attributes of every bound component's last event (§V-B: "the
  /// attributes of partial matches that appear in the query predicates").
  std::vector<float> features;
  /// Predictor variables for the event-level classifier used by the input
  /// filter rho_I: the predicate attributes of the last event only (an
  /// arriving event exposes no more).
  std::vector<float> event_features;
  /// Type of the event whose binding created this match — the (type, state)
  /// key hSPICE's utility table is learned over. -1 if unknown.
  int last_event_type = -1;
  /// Complete matches derived from this match, bucketed by the match's age
  /// slice at derivation time.
  std::vector<float> contrib_by_slice;
  /// Resource cost Omega of partial matches derived from this match,
  /// bucketed likewise (includes the match's own Omega in slice 0).
  std::vector<float> consum_by_slice;
  /// The match's own resource cost.
  float own_omega = 1.0f;
  Timestamp start_ts = 0;
  /// Creation time (timestamp of the event whose binding created it).
  Timestamp birth_ts = 0;
};

/// \brief Everything the shedding strategies learn from historic data.
struct OfflineStats {
  int num_slices = 1;
  Duration slice_len = 1;
  std::vector<PmRecord> records;
  /// Per event type: fraction of events of that type that participate in at
  /// least one complete match (the SI baseline's utility).
  std::vector<double> type_utility;
  /// Per event type: share of the input stream.
  std::vector<double> type_share;
  /// Per NFA state: fraction of partial matches reaching the state that
  /// eventually derive at least one complete match (the SS baseline's
  /// utility).
  std::vector<double> state_completion;
  size_t num_events = 0;
  size_t num_matches = 0;
  /// Wall-clock seconds of the replay + bookkeeping (the paper reports
  /// 0.75 - 4.5 s for cost model estimation).
  double replay_seconds = 0.0;
};

/// \brief Extracts the event-level classifier features from an event.
std::vector<float> ExtractFeatures(const Event& event, const Nfa& nfa);

/// \brief Extracts the match classifier features: the predicate attributes
/// of the last event of every slot up to and including the match's state
/// (fixed dimension per state; empty open components pad with -1).
std::vector<float> ExtractStateFeatures(const PartialMatch& pm, const Nfa& nfa);

/// \brief Replays `history` and derives OfflineStats.
/// `use_resource_cost` selects the paper's explicit resource cost Omega
/// (predicate evaluation cost of the match's state) versus the plain count
/// abstraction (Fig. 11's ablation).
Result<OfflineStats> EstimateOffline(std::shared_ptr<const Nfa> nfa,
                                     const EventStream& history, int num_slices,
                                     bool use_resource_cost,
                                     const EngineOptions& engine_options = {});

}  // namespace cepshed

#endif  // CEPSHED_SHED_OFFLINE_ESTIMATOR_H_
