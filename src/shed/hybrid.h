// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The paper's hybrid load shedding (§IV, §V): the cost model's shedding
// set simultaneously drives state-based shedding (rho_S removes the
// selected classes of partial matches) and input-based shedding (rho_I
// discards arriving events that classify into a selected class, applied
// until the latency bound is satisfied again). Because both functions are
// grounded in the same cost model, no explicit weighting between them is
// needed (§IV-C).

#ifndef CEPSHED_SHED_HYBRID_H_
#define CEPSHED_SHED_HYBRID_H_

#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/shed/cost_model.h"
#include "src/shed/shedder.h"
#include "src/shed/shedding_set.h"

namespace cepshed {

/// \brief Configuration of the latency-bound hybrid strategy.
struct HybridOptions {
  /// Latency bound theta in cost units.
  double theta = 0.0;
  /// Post-trigger delay j in events (effects must materialize first —
  /// at least the latency monitor's sliding window, or each violation is
  /// re-covered several times before mu can reflect the previous kill).
  uint64_t trigger_delay = 1000;
  /// Enable rho_I (disable for a pure state-based variant).
  bool enable_input = true;
  /// Enable rho_S (disable for a pure input-based variant).
  bool enable_state = true;
  /// Shedding-set solver.
  KnapsackMode solver = KnapsackMode::kDP;
  /// Sorted per-event utilities of the training stream (see
  /// ComputeTrainingUtilities); the input filter's cutoff is a quantile of
  /// this distribution. Empty = only zero-utility events are droppable.
  std::vector<double> utility_samples;
  /// Each non-improving trigger escalates the input filter by this
  /// fraction of the event-utility distribution; improvement steps back —
  /// trading recall for throughput gradually (the turning point of the
  /// paper's Fig. 5). The base level drops only events whose utility is
  /// assessably zero (§IV-A: input shedding is preferred exactly when an
  /// event's utility can be assessed precisely).
  double input_escalation_step = 0.075;
  /// Ablation: restrict rho_S to zero-contribution classes (never shed
  /// contribution-bearing state even under sustained violation).
  bool state_zero_only = false;
  /// The input filter and escalation release once mu falls below
  /// hysteresis x theta; releasing right at theta floods the state back
  /// and oscillates between overload and recovery.
  double hysteresis = 0.85;
  /// The standing zero-class filter is free in recall terms and is held
  /// until deep recovery (mu below this fraction of theta), which keeps
  /// the system from cycling refill -> overload -> mass kill.
  double zero_release = 0.6;
  /// Seed for the fractional kills of contribution-bearing classes.
  uint64_t seed = 1234;
  /// Exploration rate: this fraction of filter decisions (both the
  /// standing zero-class filter and rho_I) is overridden, letting a few
  /// matches/events of "worthless" classes through. Without it a class
  /// that becomes valuable after a distribution change could never
  /// produce the contribution evidence online adaptation needs to
  /// rehabilitate it (the recovery of the paper's Fig. 12).
  double exploration = 0.02;
};

/// \brief Latency-bound hybrid shedding (the paper's "Hybrid").
///
/// The owning harness must wire the bound engine's classifier and hooks to
/// the same CostModel instance (see ExperimentHarness).
class HybridShedder : public Shedder {
 public:
  HybridShedder(CostModel* model, HybridOptions options);

  std::string Name() const override;
  double theta() const override { return options_.theta; }
  void Bind(Engine* engine) override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

  /// Times the shedding-set selection was executed.
  uint64_t triggers() const { return triggers_; }
  /// True while the derived input filter is active.
  bool input_filter_active() const { return input_active_; }

 private:
  CostModel* model_;
  HybridOptions options_;
  OverloadTrigger trigger_;
  bool input_active_ = false;
  bool state_filter_active_ = false;
  /// Zero-contribution (state, class, slice) keys: free to shed, kept in
  /// force (creation filter) until the bound holds again.
  std::set<std::tuple<int, int32_t, int>> zero_keys_;
  /// Contribution-bearing keys the knapsack needed to cover the violation:
  /// transient, re-decided at every trigger so no class is suppressed
  /// permanently.
  std::set<std::tuple<int, int32_t, int>> lossy_keys_;
  /// Current rho_I utility cutoff: arriving events whose cost-model
  /// utility is at or below it are discarded.
  double utility_cutoff_ = -1.0;
  uint64_t triggers_ = 0;
  double last_violation_ = 0.0;
  int escalation_level_ = 0;
  /// Kill probability applied to members of lossy_keys_ this trigger.
  double lossy_fraction_ = 1.0;
  /// Smoothed latency of the last AfterEvent (audit context for drops
  /// decided inside FilterEvent, which does not see mu).
  double last_mu_ = 0.0;
  Rng rng_{1234};
};

/// \brief Fixed-ratio input-only variant (HyI in §VI-C): drops the events
/// whose cost-model utility falls below the ratio's quantile, calibrated
/// on the training stream.
class HybridFixedInputShedder : public Shedder {
 public:
  /// `threshold` and `tie_probability` come from
  /// ComputeUtilityThreshold() over the training stream.
  HybridFixedInputShedder(const CostModel* model, double threshold,
                          double tie_probability, uint64_t seed);

  std::string Name() const override { return "HyI"; }
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp, double) override {}

 private:
  const CostModel* model_;
  double threshold_;
  double tie_probability_;
  Rng rng_;
};

/// \brief Fixed-ratio state-only variant (HyS in §VI-C): periodically
/// sheds the requested fraction of live matches, choosing classes in
/// increasing contribution/consumption ratio.
class HybridFixedStateShedder : public Shedder {
 public:
  HybridFixedStateShedder(const CostModel* model, double fraction, uint64_t period,
                          uint64_t seed);

  std::string Name() const override { return "HyS"; }
  bool FilterEvent(const Event&) override { return false; }
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;

 private:
  const CostModel* model_;
  double fraction_;
  uint64_t period_;
  uint64_t events_seen_ = 0;
  Rng rng_;
};

/// \brief Fixed-ratio hybrid (§VI-C): the HyI input filter plus periodic
/// HyS state shedding over one shared cost model, the ratio split evenly
/// between the two sides by the caller.
class HybridFixedShedder : public Shedder {
 public:
  HybridFixedShedder(const CostModel* model, double input_threshold,
                     double tie_probability, double state_fraction,
                     uint64_t period, uint64_t input_seed, uint64_t state_seed);

  std::string Name() const override { return "Hybrid"; }
  void Bind(Engine* engine) override;
  bool FilterEvent(const Event& event) override;
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;
  void set_obs(obs::ShardObs* o, int shard = 0) override;

 private:
  HybridFixedInputShedder input_;
  HybridFixedStateShedder state_;
};

/// \brief Registry adapter for model-backed strategies: owns the per-run
/// CostModel copy (online adaptation is per-run state) and installs the
/// engine hooks the experiment harness would otherwise wire — classifier,
/// pm-created and match — at Bind time. Lets the ShedderRegistry hand out
/// one self-contained Shedder whose behavior is identical to harness
/// wiring.
class ModelOwningShedder : public Shedder {
 public:
  ModelOwningShedder(std::unique_ptr<CostModel> model,
                     std::unique_ptr<Shedder> inner);

  std::string Name() const override { return inner_->Name(); }
  double theta() const override { return inner_->theta(); }
  void Bind(Engine* engine) override;
  bool FilterEvent(const Event& event) override { return inner_->FilterEvent(event); }
  void AfterEvent(Timestamp now, double mu) override;
  void Reset() override;
  void set_obs(obs::ShardObs* o, int shard = 0) override;

  CostModel* model() { return model_.get(); }

 private:
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<Shedder> inner_;
};

/// \brief Calibrates the fixed-ratio utility threshold: the `fraction`
/// quantile of CostModel::EventUtility over the training stream, plus the
/// tie-breaking drop probability that hits the fraction exactly under
/// discrete utilities.
std::pair<double, double> ComputeUtilityThreshold(const CostModel& model,
                                                  const EventStream& train,
                                                  double fraction);

/// \brief Sorted per-event utilities of a (training) stream — the
/// distribution the hybrid strategy's input-filter quantile cutoff is
/// taken from.
std::vector<double> ComputeTrainingUtilities(const CostModel& model,
                                             const EventStream& train);

}  // namespace cepshed

#endif  // CEPSHED_SHED_HYBRID_H_
