# Empty compiler generated dependencies file for bench_fig04_latency_bounds.
# This may be replaced when dependencies are built.
