// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/google_trace.h"

#include <algorithm>
#include <deque>

namespace cepshed {

Schema MakeGoogleTraceSchema() {
  Schema schema;
  for (const char* t : {"Submit", "Schedule", "Evict", "Fail", "Finish"}) {
    auto r = schema.AddEventType(t);
    (void)r;
  }
  for (const char* a : {"task", "machine", "priority"}) {
    auto r = schema.AddAttribute(a, ValueType::kInt);
    (void)r;
  }
  return schema;
}

EventStream GenerateGoogleTrace(const Schema& schema,
                                const GoogleTraceOptions& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int task_attr = schema.AttributeIndex("task");
  const int machine_attr = schema.AttributeIndex("machine");
  const int prio_attr = schema.AttributeIndex("priority");
  const int t_submit = schema.EventTypeId("Submit");
  const int t_schedule = schema.EventTypeId("Schedule");
  const int t_evict = schema.EventTypeId("Evict");
  const int t_fail = schema.EventTypeId("Fail");
  const int t_finish = schema.EventTypeId("Finish");

  struct Task {
    int64_t id;
    int64_t priority;
    int schedules = 0;     // how often it has been scheduled
    int machine = -1;
    enum { kSubmitted, kRunning } phase = kSubmitted;
  };
  std::deque<Task> pending;   // submitted, waiting for scheduling
  std::deque<Task> running;
  int64_t next_task_id = 1;
  Timestamp now = 0;

  auto emit = [&](int type, const Task& task, int machine) {
    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(task_attr)] = Value(task.id);
    attrs[static_cast<size_t>(machine_attr)] = Value(static_cast<int64_t>(machine));
    attrs[static_cast<size_t>(prio_attr)] = Value(task.priority);
    Status st = stream.Emit(type, now, std::move(attrs));
    (void)st;
  };

  while (stream.size() < options.num_events) {
    const bool storm = (now % options.storm_period) < options.storm_length;
    now += std::max<Timestamp>(
        1, static_cast<Timestamp>(rng.Exponential(1.0 / options.base_gap)));

    // Keep the cluster fed: submit new tasks while below the live cap.
    const size_t live = pending.size() + running.size();
    if (live < static_cast<size_t>(options.max_live_tasks) &&
        (live == 0 || rng.Bernoulli(0.4))) {
      Task task;
      task.id = next_task_id++;
      task.priority = rng.UniformInt(0, 9);
      emit(t_submit, task, -1);
      pending.push_back(task);
      continue;
    }

    // Scheduler pass: place a pending task.
    if (!pending.empty() && (running.empty() || rng.Bernoulli(0.5))) {
      Task task = pending.front();
      pending.pop_front();
      // Reschedules land on a different machine (the paper's pattern needs
      // distinct machines across the evict/reschedule chain).
      int machine;
      do {
        machine = static_cast<int>(rng.UniformInt(0, options.num_machines - 1));
      } while (machine == task.machine && options.num_machines > 1);
      task.machine = machine;
      ++task.schedules;
      task.phase = Task::kRunning;
      emit(t_schedule, task, machine);
      running.push_back(task);
      continue;
    }
    if (running.empty()) continue;

    // A running task transitions: evict, fail, or finish.
    const size_t pick = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(running.size()) - 1));
    std::swap(running[pick], running.back());
    Task task = running.back();
    running.pop_back();

    const double evict_p = storm ? options.storm_evict_prob : options.evict_prob;
    if (rng.Bernoulli(evict_p)) {
      emit(t_evict, task, task.machine);
      task.phase = Task::kSubmitted;
      pending.push_back(task);  // will be rescheduled elsewhere
    } else if (task.schedules >= 3 && rng.Bernoulli(options.fail_prob)) {
      emit(t_fail, task, task.machine);
    } else {
      emit(t_finish, task, task.machine);
    }
  }
  return stream;
}

Result<EventStream> LoadGoogleTraceCsv(const Schema& schema, const std::string& path,
                                       CsvReadStats* stats) {
  CsvReadOptions options;
  options.lenient = true;
  return ReadCsvFile(schema, path, options, stats);
}


}  // namespace cepshed
