// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Error-path coverage of the fault-schedule DSL parser: every class of
// malformed input must come back as a ParseError naming the offending
// line, never a crash or a silently empty schedule, and well-formed
// schedules must round-trip through ToString.

#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cepshed {
namespace {

/// The parse must fail with a ParseError whose message contains every
/// given fragment (in particular the "line N" prefix).
void ExpectParseError(const std::string& spec,
                      const std::vector<std::string>& fragments) {
  SCOPED_TRACE("spec: " + spec);
  auto result = FaultInjector::Parse(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  for (const std::string& fragment : fragments) {
    EXPECT_NE(result.status().message().find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << result.status().message();
  }
}

TEST(FaultInjectorParseTest, UnknownKind) {
  ExpectParseError("quake:shard=0,at=5", {"line 1", "unknown fault kind", "quake"});
}

TEST(FaultInjectorParseTest, UnknownKey) {
  ExpectParseError("stall:shard=0,delay=5", {"line 1", "unknown key", "delay"});
}

TEST(FaultInjectorParseTest, MissingEquals) {
  ExpectParseError("stall:shard0", {"line 1", "expected key=value", "shard0"});
}

TEST(FaultInjectorParseTest, BadInteger) {
  ExpectParseError("stall:shard=zero,at=5", {"line 1", "bad integer", "zero"});
  ExpectParseError("slow:at=5x", {"line 1", "bad integer", "5x"});
}

TEST(FaultInjectorParseTest, BadDouble) {
  ExpectParseError("burst:at=5,factor=fast", {"line 1", "bad number", "fast"});
}

TEST(FaultInjectorParseTest, NegativeAt) {
  ExpectParseError("death:shard=1,at=-3", {"line 1", "at must be >= 0"});
}

TEST(FaultInjectorParseTest, NonPositiveCount) {
  ExpectParseError("slow:at=0,count=0,us=5", {"line 1", "count must be > 0"});
  ExpectParseError("slow:at=0,count=-2,us=5", {"line 1", "count must be > 0"});
}

TEST(FaultInjectorParseTest, BadBurstFactor) {
  ExpectParseError("burst:at=0,count=5,factor=1", {"line 1", "factor != 1"});
  ExpectParseError("burst:at=0,count=5,factor=-2", {"line 1", "factor must be > 0"});
  ExpectParseError("burst:at=0,count=5,factor=0", {"line 1", "factor must be > 0"});
}

TEST(FaultInjectorParseTest, NegativeSleep) {
  ExpectParseError("stall:at=0,us=-10", {"line 1", "sleep duration"});
  ExpectParseError("slow:at=0,count=3,ms=-1", {"line 1", "sleep duration"});
}

TEST(FaultInjectorParseTest, ErrorsNameTheOffendingLine) {
  // Three entries, one per line; only the third is malformed.
  ExpectParseError(
      "stall:shard=0,at=200,ms=30\n"
      "death:shard=1,at=500\n"
      "burst:at=9,count=4,factor=one",
      {"line 3", "bad number", "one"});
  // Semicolon-separated entries on one line share that line's number.
  ExpectParseError("stall:at=1,us=2;quake:at=3", {"line 1", "quake"});
  // Mixed: a newline then two entries on line 2, the second one bad.
  ExpectParseError("skew:at=0,count=2,us=-5\nstall:at=1;slow:at=x",
                   {"line 2", "bad integer", "x"});
}

TEST(FaultInjectorParseTest, BlankLinesAndWhitespaceAreSkipped) {
  auto result = FaultInjector::Parse(
      "\n  stall:shard=0,at=200,ms=30  \n\n;;\n  death:shard=1,at=500\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->specs().size(), 2u);
  EXPECT_EQ(result->specs()[0].kind, FaultKind::kStall);
  EXPECT_EQ(result->specs()[0].micros, 30'000);
  EXPECT_EQ(result->specs()[1].kind, FaultKind::kDeath);
  EXPECT_EQ(result->specs()[1].shard, 1);
}

TEST(FaultInjectorParseTest, LineNumbersCountBlankLines) {
  ExpectParseError("\n\nnope:at=1", {"line 3", "unknown fault kind"});
}

TEST(FaultInjectorParseTest, EmptySpecYieldsEmptyInjector) {
  for (const char* spec : {"", "   ", ";;;", "\n\n", " ; \n ; "}) {
    auto result = FaultInjector::Parse(spec);
    ASSERT_TRUE(result.ok()) << spec;
    EXPECT_TRUE(result->empty()) << spec;
  }
}

TEST(FaultInjectorParseTest, DuplicateAnchorsAreRejected) {
  // Two entries of one kind at one (shard, at) anchor are a duplicate or a
  // contradiction; the parser must refuse rather than last-win.
  ExpectParseError("death:shard=0,at=40;death:shard=0,at=40",
                   {"line 1", "duplicate death anchor", "shard=0", "at=40"});
  ExpectParseError("resize:at=600,delta=+1\nresize:at=600,delta=-1",
                   {"line 2", "duplicate resize anchor", "at=600"});
  ExpectParseError("stall:shard=2,at=9,us=5\nslow:at=3,count=2,us=1\n"
                   "stall:shard=2,at=9,ms=1",
                   {"line 3", "duplicate stall anchor", "shard=2", "at=9"});
}

TEST(FaultInjectorParseTest, DuplicateErrorNamesTheSecondEntrysLine) {
  auto result = FaultInjector::Parse(
      "death:shard=1,at=500\n\nburst:at=9,count=4,factor=2\n"
      "death:shard=1,at=500");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().message();
  EXPECT_EQ(result.status().message().find("line 1"), std::string::npos)
      << result.status().message();
}

TEST(FaultInjectorParseTest, NearDuplicateAnchorsAreAllowed) {
  // Same kind, different shard or index — and different kinds sharing one
  // anchor — are all legitimate schedules.
  for (const char* spec :
       {"death:shard=0,at=40;death:shard=1,at=40",
        "death:shard=0,at=40;death:shard=0,at=41",
        "death:shard=0,at=40;stall:shard=0,at=40,us=5",
        "resize:at=600,delta=+1;resize:at=700,delta=-1",
        "resize:shard=0,at=600,delta=+1;resize:at=600,delta=-1"}) {
    auto result = FaultInjector::Parse(spec);
    EXPECT_TRUE(result.ok()) << spec << ": " << result.status().ToString();
  }
}

TEST(FaultInjectorParseTest, WellFormedScheduleRoundTrips) {
  const std::string spec =
      "stall:shard=0,at=200,us=30000;slow:shard=-1,at=10,count=5,us=7;"
      "burst:shard=2,at=50,count=100,factor=2.5;"
      "saturate:shard=1,at=40,count=8;skew:shard=3,at=0,count=6,us=-250;"
      "death:shard=1,at=500";
  auto first = FaultInjector::Parse(spec, 11);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->specs().size(), 6u);
  auto second = FaultInjector::Parse(first->ToString(), 11);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->ToString(), second->ToString());
  // Newline-separated form parses to the identical schedule.
  std::string with_newlines = spec;
  for (char& c : with_newlines) {
    if (c == ';') c = '\n';
  }
  auto third = FaultInjector::Parse(with_newlines, 11);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(first->ToString(), third->ToString());
}

}  // namespace
}  // namespace cepshed
