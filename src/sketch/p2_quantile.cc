// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/sketch/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace cepshed {

P2Quantile::P2Quantile(double q) : q_(q) { Reset(); }

void P2Quantile::Reset() {
  count_ = 0;
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0;
    positions_[i] = i + 1;
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
  ++count_;
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few observations seen so far.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double idx = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace cepshed
