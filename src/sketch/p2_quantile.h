// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// The P^2 (piecewise-parabolic) streaming quantile estimator of Jain &
// Chlamtac (1985). Used for the 95th/99th-percentile latency bounds of the
// paper's experiments and for quantile-threshold input shedding.

#ifndef CEPSHED_SKETCH_P2_QUANTILE_H_
#define CEPSHED_SKETCH_P2_QUANTILE_H_

#include <cstddef>

namespace cepshed {

/// \brief Streaming estimator of a single quantile in O(1) space.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  /// Folds in one observation.
  void Add(double x);

  /// Current estimate (exact until five observations are seen).
  double Value() const;

  /// Observations seen.
  size_t Count() const { return count_; }

  void Reset();

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
  size_t count_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_SKETCH_P2_QUANTILE_H_
