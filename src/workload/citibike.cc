// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/workload/citibike.h"

#include <algorithm>

namespace cepshed {

Schema MakeCitibikeSchema() {
  Schema schema;
  auto r0 = schema.AddEventType("BikeTrip");
  (void)r0;
  for (const char* a : {"bike", "start", "end", "user"}) {
    auto r = schema.AddAttribute(a, ValueType::kInt);
    (void)r;
  }
  return schema;
}

EventStream GenerateCitibike(const Schema& schema, const CitibikeOptions& options) {
  EventStream stream(&schema);
  Rng rng(options.seed);
  const int bike_attr = schema.AttributeIndex("bike");
  const int start_attr = schema.AttributeIndex("start");
  const int end_attr = schema.AttributeIndex("end");
  const int user_attr = schema.AttributeIndex("user");
  const int trip_type = schema.EventTypeId("BikeTrip");

  // Current station per bike.
  std::vector<int> station(static_cast<size_t>(options.num_bikes));
  for (auto& s : station) {
    s = static_cast<int>(rng.UniformInt(0, options.num_stations - 1));
  }

  Timestamp now = 0;
  for (size_t i = 0; i < options.num_events; ++i) {
    const bool rush = (now % options.rush_period) < options.rush_length;
    const double gap =
        options.base_gap / (rush ? options.rush_rate_factor : 1.0);
    now += std::max<Timestamp>(1, static_cast<Timestamp>(rng.Exponential(1.0 / gap)));

    const int bike = static_cast<int>(rng.UniformInt(0, options.num_bikes - 1));
    const bool subscriber = rng.Bernoulli(options.subscriber_fraction);
    const int from = station[static_cast<size_t>(bike)];
    int to;
    const double hot_p = rush ? options.hot_end_prob_rush : options.hot_end_prob;
    if (rng.Bernoulli(hot_p)) {
      to = static_cast<int>(rng.UniformInt(7, 9));  // the hot stations
    } else {
      to = static_cast<int>(rng.UniformInt(0, options.num_stations - 1));
    }

    std::vector<Value> attrs(schema.num_attributes());
    attrs[static_cast<size_t>(bike_attr)] = Value(static_cast<int64_t>(bike));
    attrs[static_cast<size_t>(start_attr)] = Value(static_cast<int64_t>(from));
    attrs[static_cast<size_t>(end_attr)] = Value(static_cast<int64_t>(to));
    attrs[static_cast<size_t>(user_attr)] = Value(static_cast<int64_t>(subscriber ? 0 : 1));
    Status st = stream.Emit(trip_type, now, std::move(attrs));
    (void)st;

    if (subscriber) {
      // The bike stays where the subscriber left it: chains continue.
      station[static_cast<size_t>(bike)] = to;
    } else {
      // Customers' bikes get redistributed by the operator (the paper's
      // "operator moves around 6k bikes per day"): chains break.
      station[static_cast<size_t>(bike)] =
          static_cast<int>(rng.UniformInt(0, options.num_stations - 1));
    }
  }
  return stream;
}

Result<EventStream> LoadCitibikeCsv(const Schema& schema, const std::string& path,
                                    CsvReadStats* stats) {
  CsvReadOptions options;
  options.lenient = true;
  return ReadCsvFile(schema, path, options, stats);
}


}  // namespace cepshed
