// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/shed/controller.h"

#include <algorithm>
#include <chrono>

namespace cepshed {

ShedRunner::ShedRunner(Engine* engine, Shedder* shedder,
                       LatencyMonitor::Options latency_options)
    : engine_(engine), shedder_(shedder), latency_options_(latency_options) {
  shedder_->Bind(engine_);
}

RunResult ShedRunner::Run(const EventStream& stream, size_t pm_sample_stride) {
  RunResult result;
  LatencyMonitor monitor(latency_options_);
  std::vector<double> latencies;
  latencies.reserve(stream.size());

  if (obs_ != nullptr) shedder_->set_obs(obs_);
  const auto t0 = std::chrono::steady_clock::now();
  size_t since_sample = 0;
  size_t matches_seen = 0;
  for (const EventPtr& event : stream) {
    ++result.total_events;
    double cost;
    if (shedder_->FilterEvent(*event)) {
      ++result.dropped_events;
      cost = kDroppedEventCost;
    } else {
      cost = engine_->Process(event, &result.matches);
      ++result.processed_events;
      if (obs_ != nullptr) obs_->events_processed.Add();
    }
    if (obs_ != nullptr) {
      obs_->events_routed.Add();
      obs_->event_cost.Record(cost);
      if (result.matches.size() != matches_seen) {
        obs_->matches_emitted.Add(result.matches.size() - matches_seen);
        matches_seen = result.matches.size();
      }
    }
    monitor.Record(cost);
    latencies.push_back(cost);
    const double theta = shedder_->theta();
    if (theta > 0.0 && monitor.Count() >= latency_options_.window) {
      ++result.bound_checked;
      if (monitor.Current() > theta) ++result.bound_violations;
    }
    shedder_->AfterEvent(event->timestamp(), monitor.Current());

    if (pm_sample_stride > 0 && ++since_sample >= pm_sample_stride) {
      since_sample = 0;
      result.pm_series.push_back(engine_->NumPartialMatches() +
                                 engine_->NumWitnesses());
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  result.shed_pms = shedder_->pms_shed();
  result.pms_created = engine_->stats().pms_created + engine_->stats().witnesses_created;
  result.engine_stats = engine_->stats();
  result.pm_series_stride = pm_sample_stride;

  result.avg_latency = monitor.OverallAverage();
  if (!latencies.empty()) {
    // One working copy for both quantiles. Ranks use the same sorted-index
    // convention as the obs log-histogram (HistogramSnapshot::Quantile):
    // element floor(q * (n-1)) of the sorted samples — so the exported
    // histogram percentiles and these exact ones agree up to bucket width.
    const size_t n = latencies.size();
    auto rank = [n](double q) {
      return std::min(n - 1, static_cast<size_t>(q * static_cast<double>(n - 1)));
    };
    const size_t i95 = rank(0.95);
    const size_t i99 = rank(0.99);
    std::vector<double> copy = latencies;
    std::nth_element(copy.begin(), copy.begin() + static_cast<ptrdiff_t>(i95),
                     copy.end());
    result.p95_latency = copy[i95];
    // nth_element left [i95, end) holding the top tail, so the second
    // selection only has to partition that suffix.
    std::nth_element(copy.begin() + static_cast<ptrdiff_t>(i95),
                     copy.begin() + static_cast<ptrdiff_t>(i99), copy.end());
    result.p99_latency = copy[i99];
  }
  return result;
}

}  // namespace cepshed
