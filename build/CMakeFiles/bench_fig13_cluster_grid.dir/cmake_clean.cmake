file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cluster_grid.dir/bench/bench_fig13_cluster_grid.cpp.o"
  "CMakeFiles/bench_fig13_cluster_grid.dir/bench/bench_fig13_cluster_grid.cpp.o.d"
  "bench/bench_fig13_cluster_grid"
  "bench/bench_fig13_cluster_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cluster_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
