# Empty compiler generated dependencies file for bench_fig10_time_slices.
# This may be replaced when dependencies are built.
