// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// CSV import/export of event streams: lets users replay their own traces
// (e.g., the real citibike trip data) through the engine, and lets the
// examples persist generated workloads.
//
// Format: header `type,timestamp,<attr1>,<attr2>,...` (attributes in
// schema order), one event per line, empty cells for null attributes.
// Cells containing commas, quotes, or line breaks are quoted
// RFC-4180-style on write (embedded quotes doubled) and unquoted on read;
// CRLF line endings are accepted; numeric cells parse strictly and
// locale-independently via std::from_chars (no leading/trailing
// whitespace, no leading '+', no hex floats). Embedded line breaks in
// string attributes are quoted on write but not reassembled on read —
// the readers are line-oriented.

#ifndef CEPSHED_WORKLOAD_CSV_H_
#define CEPSHED_WORKLOAD_CSV_H_

#include <iosfwd>
#include <string>

#include "src/cep/schema.h"
#include "src/cep/stream.h"
#include "src/common/result.h"

namespace cepshed {

/// Writes a stream as CSV.
Status WriteCsv(const EventStream& stream, std::ostream* out);
Status WriteCsvFile(const EventStream& stream, const std::string& path);

/// Counters published by a CSV read.
struct CsvReadStats {
  /// Data rows consumed (header and blank lines excluded).
  uint64_t rows_read = 0;
  /// Rows skipped in lenient mode (wrong arity, unknown event type,
  /// unparsable cell, or a timestamp the stream rejects).
  uint64_t malformed_rows = 0;
};

struct CsvReadOptions {
  /// Strict (the default) fails the whole read on the first malformed
  /// row. Lenient skips such rows and counts them in
  /// CsvReadStats::malformed_rows — real traces (citibike exports, the
  /// google cluster dumps) routinely carry truncated or garbled lines,
  /// and losing one row is the load-shedding-friendly answer. A header
  /// that does not match the schema is a hard error in both modes: that
  /// is the wrong file, not a bad row.
  bool lenient = false;
};

/// Reads a CSV produced by WriteCsv (or hand-made with the same header)
/// into a stream over `schema`. Attribute cells are parsed according to
/// the schema's declared types. `stats` may be null.
Result<EventStream> ReadCsv(const Schema& schema, std::istream* in,
                            const CsvReadOptions& options = {},
                            CsvReadStats* stats = nullptr);
Result<EventStream> ReadCsvFile(const Schema& schema, const std::string& path,
                                const CsvReadOptions& options = {},
                                CsvReadStats* stats = nullptr);

}  // namespace cepshed

#endif  // CEPSHED_WORKLOAD_CSV_H_
