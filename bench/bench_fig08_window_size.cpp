// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 8 of the paper: impact of the time window size (1-16 ms) on recall
// and throughput under a 50% bound on the 95th-percentile latency (DS1/Q1).

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  Header("Fig. 8a+8b", "DS1/Q1, window 1-16ms, 50% bound on the 95th-pct latency",
         kResultColumns);
  for (int window_ms : {1, 2, 4, 8, 16}) {
    Ds1Options gen;
    gen.num_events = window_ms >= 8 ? 20000 : 25000;
    auto exp = PrepareDs1(*queries::Q1(std::to_string(window_ms) + "ms"), gen);
    for (StrategyKind kind : BoundStrategies()) {
      const ExperimentResult r = exp.harness->RunBound(kind, 0.5, LatencyStat::kP95);
      PrintResultRow(std::to_string(window_ms), r);
    }
  }
  return 0;
}
