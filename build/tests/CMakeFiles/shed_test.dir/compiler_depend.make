# Empty compiler generated dependencies file for shed_test.
# This may be replaced when dependencies are built.
