// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Read-only memory mapping of a whole file. Trace readers parse directly
// out of the mapped bytes (string_view cursors), so ingest pays no per-row
// read or copy; the kernel pages the file in behind a sequential-access
// hint.

#ifndef CEPSHED_UTIL_FILE_MAPPING_H_
#define CEPSHED_UTIL_FILE_MAPPING_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/common/result.h"

namespace cepshed {

/// \brief RAII owner of a read-only mmap of one regular file.
///
/// Move-only. The mapped bytes stay valid (and stable in memory) for the
/// lifetime of the object, including across moves — views handed out by
/// view() survive moving the owner. An empty file maps to a null, zero-
/// length view, which is still a successful open.
class FileMapping {
 public:
  FileMapping() = default;
  ~FileMapping();
  FileMapping(FileMapping&& other) noexcept;
  FileMapping& operator=(FileMapping&& other) noexcept;
  FileMapping(const FileMapping&) = delete;
  FileMapping& operator=(const FileMapping&) = delete;

  /// Maps `path` read-only. Fails if the file cannot be opened or is not
  /// a regular file.
  static Result<FileMapping> Open(const std::string& path);

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  std::string_view view() const { return {data(), size_}; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_UTIL_FILE_MAPPING_H_
