// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Result<T>: a Status plus, when OK, a value of type T.

#ifndef CEPSHED_COMMON_RESULT_H_
#define CEPSHED_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace cepshed {

/// \brief Holds either a value of type T or an error Status.
///
/// Construction from a T yields an OK result; construction from a non-OK
/// Status yields an error result. Accessing the value of an error result is
/// a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Constructs an error result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Moves the contained value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Mutable access to the contained value. Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alt` if this result is an error.
  T ValueOr(T alt) const {
    if (ok()) return *value_;
    return alt;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error Status to the caller.
#define CEPSHED_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define CEPSHED_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CEPSHED_ASSIGN_OR_RETURN_IMPL(CEPSHED_CONCAT_(_res_, __LINE__), lhs, rexpr)

#define CEPSHED_CONCAT_INNER_(a, b) a##b
#define CEPSHED_CONCAT_(a, b) CEPSHED_CONCAT_INNER_(a, b)

}  // namespace cepshed

#endif  // CEPSHED_COMMON_RESULT_H_
