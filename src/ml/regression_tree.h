// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// A multi-target regression tree (CART with variance-reduction splits).
// The cost model fits one per NFA state on (predicate attributes) ->
// (contribution, consumption): the leaves partition partial matches into
// attribute-defined groups with homogeneous expected cost — irrelevant
// attributes yield no variance reduction and are ignored automatically —
// and the leaf partition doubles as the class predicate of §V-A.

#ifndef CEPSHED_ML_REGRESSION_TREE_H_
#define CEPSHED_ML_REGRESSION_TREE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace cepshed {

/// \brief Multi-target CART regression tree.
class RegressionTree {
 public:
  struct Options {
    int max_depth = 10;
    int min_samples_leaf = 50;
    /// Minimum relative impurity decrease to accept a split.
    double min_gain = 1e-4;
  };

  /// \brief Statistics of one leaf.
  struct Leaf {
    size_t count = 0;
    /// Mean per target dimension.
    std::vector<double> mean;
  };

  RegressionTree() = default;

  /// Fits on X (n x d) and targets Y (n x m). Targets are internally
  /// normalized per dimension so that each contributes equally to the
  /// split criterion.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<std::vector<double>>& y, const Options& options);

  /// Dense leaf index for a feature vector. Requires a fitted tree.
  int PredictLeaf(const double* x, size_t n) const;
  int PredictLeaf(const std::vector<double>& x) const {
    return PredictLeaf(x.data(), x.size());
  }

  /// Mean target vector of the leaf a feature vector falls into.
  const std::vector<double>& Predict(const std::vector<double>& x) const {
    return leaves_[static_cast<size_t>(PredictLeaf(x))].mean;
  }

  bool fitted() const { return !nodes_.empty(); }
  size_t num_leaves() const { return leaves_.size(); }
  const Leaf& leaf(int index) const { return leaves_[static_cast<size_t>(index)]; }
  size_t num_nodes() const { return nodes_.size(); }
  int Depth() const;

  /// Leaf index of each training sample, in Fit input order.
  const std::vector<int>& training_leaves() const { return training_leaves_; }

 private:
  struct Node {
    int feature = -1;  // -1 for leaves
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int leaf_index = -1;  // valid for leaves
  };

  int Build(const std::vector<std::vector<double>>& x,
            const std::vector<std::vector<double>>& y_norm,
            std::vector<uint32_t>& indices, size_t begin, size_t end, int depth,
            const Options& options, const std::vector<std::vector<double>>& y_raw);

  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  std::vector<int> training_leaves_;
  size_t num_features_ = 0;
  size_t num_targets_ = 0;
};

}  // namespace cepshed

#endif  // CEPSHED_ML_REGRESSION_TREE_H_
