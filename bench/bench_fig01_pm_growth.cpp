// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Fig. 1 of the paper: the number of partial matches over time when
// evaluating the citibike 'hot paths' query (Listing 1) — the spike that
// motivates load shedding.

#include "bench/bench_util.h"

using namespace cepshed;
using namespace cepshed::bench;

int main() {
  const Schema schema = MakeCitibikeSchema();
  CitibikeOptions gen;
  gen.num_events = 40000;
  gen.seed = 1;
  const EventStream stream = GenerateCitibike(schema, gen);

  auto query = queries::CitibikeHotPaths(/*min_path=*/5, /*max_path=*/8);
  auto nfa = Nfa::Compile(*query, &schema);
  if (!nfa.ok()) {
    std::fprintf(stderr, "%s\n", nfa.status().ToString().c_str());
    return 1;
  }
  Engine engine(*nfa, EngineOptions{});
  std::vector<Match> matches;

  Header("Fig. 1", "partial matches over time, citibike hot paths (Listing 1)",
         "event_offset,minutes,partial_matches");
  const size_t stride = stream.size() / 200;
  for (size_t i = 0; i < stream.size(); ++i) {
    engine.Process(stream[i], &matches);
    if (i % stride == 0) {
      std::printf("%zu,%.1f,%zu\n", i,
                  static_cast<double>(stream[i]->timestamp()) / Minutes(1),
                  engine.NumPartialMatches());
    }
  }
  std::printf("# peak=%zu matches=%zu\n", engine.stats().peak_pms, matches.size());
  return 0;
}
