// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.

#include "src/opt/knapsack.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace cepshed {

double TotalValue(const std::vector<KnapsackItem>& items,
                  const std::vector<size_t>& sel) {
  double v = 0.0;
  for (size_t i : sel) v += items[i].value;
  return v;
}

double TotalWeight(const std::vector<KnapsackItem>& items,
                   const std::vector<size_t>& sel) {
  double w = 0.0;
  for (size_t i : sel) w += items[i].weight;
  return w;
}

std::vector<size_t> SolveCoveringKnapsackDP(const std::vector<KnapsackItem>& items,
                                            double threshold, int grid) {
  const size_t n = items.size();
  if (n == 0) return {};
  double total_weight = 0.0;
  for (const auto& it : items) total_weight += it.weight;
  if (total_weight <= threshold) return {};  // infeasible
  if (threshold < 0.0) threshold = 0.0;

  // Discretize weights; rounding *down* keeps selections honest (a
  // selection deemed covering on the grid is re-checked exactly below).
  const double scale = static_cast<double>(grid) / std::max(total_weight, 1e-12);
  std::vector<int> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = static_cast<int>(std::floor(items[i].weight * scale));
  }
  // Grid targets for "strictly exceed threshold". Item weights round
  // *down*, so a selection whose grid sum is t0 = ceil(threshold*scale)
  // weighs at least threshold in real terms (and usually above it, since
  // each item kept its rounding residue), while a grid sum of t0+1 weighs
  // *strictly* above threshold no matter how the rounding fell. The old
  // code used floor(threshold*scale)+1 as its only target, which equals
  // t0+1 exactly when threshold*scale lands on a grid point (integral
  // thresholds) — demanding one extra grid unit there and over-shedding
  // at the boundary. Solve for both columns: take the t0 candidate when
  // the exact re-check confirms it covers, else the guaranteed t0+1 one.
  const int t0 = static_cast<int>(std::ceil(threshold * scale));
  const int target = t0 + 1;

  const double kInf = std::numeric_limits<double>::max() / 4;
  const size_t cols = static_cast<size_t>(target) + 1;
  // dp[i][t]: minimal value using a subset of items[0..i) whose capped
  // discretized weight sum is exactly t (weights cap at `target`).
  // prev_t[i][t]: the t in layer i-1 this cell came from; take[i][t]:
  // whether item i-1 was taken on that transition.
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(cols, kInf));
  std::vector<std::vector<int>> prev_t(n + 1, std::vector<int>(cols, -1));
  std::vector<std::vector<char>> take(n + 1, std::vector<char>(cols, 0));
  dp[0][0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (int t = 0; t <= target; ++t) {
      const double base = dp[i][static_cast<size_t>(t)];
      if (base >= kInf) continue;
      // Skip item i.
      if (base < dp[i + 1][static_cast<size_t>(t)]) {
        dp[i + 1][static_cast<size_t>(t)] = base;
        prev_t[i + 1][static_cast<size_t>(t)] = t;
        take[i + 1][static_cast<size_t>(t)] = 0;
      }
      // Take item i.
      const int nt = std::min(target, t + w[i]);
      const double cand = base + items[i].value;
      if (cand < dp[i + 1][static_cast<size_t>(nt)]) {
        dp[i + 1][static_cast<size_t>(nt)] = cand;
        prev_t[i + 1][static_cast<size_t>(nt)] = t;
        take[i + 1][static_cast<size_t>(nt)] = 1;
      }
    }
  }
  auto extract = [&](int column) {
    std::vector<size_t> sel;
    int t = column;
    for (size_t i = n; i > 0; --i) {
      if (take[i][static_cast<size_t>(t)]) sel.push_back(i - 1);
      t = prev_t[i][static_cast<size_t>(t)];
    }
    std::reverse(sel.begin(), sel.end());
    return sel;
  };

  // The t0 candidate covers only if its rounding residues push the real
  // weight strictly past the threshold — verify exactly. The t0+1
  // candidate covers by construction but may cost more value.
  std::vector<size_t> best;
  bool have_best = false;
  if (dp[n][static_cast<size_t>(t0)] < kInf) {
    std::vector<size_t> cand = extract(t0);
    if (TotalWeight(items, cand) > threshold) {
      best = std::move(cand);
      have_best = true;
    }
  }
  if (dp[n][static_cast<size_t>(target)] < kInf) {
    std::vector<size_t> cand = extract(target);
    if (TotalWeight(items, cand) > threshold &&
        (!have_best || TotalValue(items, cand) < TotalValue(items, best))) {
      best = std::move(cand);
      have_best = true;
    }
  }
  if (have_best) {
    std::sort(best.begin(), best.end());
    return best;
  }

  // Neither column yielded a covering selection (rounding starved the
  // grid); top up the fullest available selection with cheap items.
  std::vector<size_t> selection;
  if (dp[n][static_cast<size_t>(target)] < kInf) {
    selection = extract(target);
  } else if (dp[n][static_cast<size_t>(t0)] < kInf) {
    selection = extract(t0);
  } else {
    return SolveCoveringKnapsackGreedy(items, threshold);
  }
  // Weight rounding left the exact sum short of the threshold: top up
  // greedily with the cheapest remaining items.
  std::vector<char> in_sel(n, 0);
  for (size_t i : selection) in_sel[i] = 1;
  std::vector<size_t> rest;
  for (size_t i = 0; i < n; ++i) {
    if (!in_sel[i]) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
    const double ra = items[a].value / std::max(items[a].weight, 1e-12);
    const double rb = items[b].value / std::max(items[b].weight, 1e-12);
    return ra < rb;
  });
  double weight = TotalWeight(items, selection);
  for (size_t i : rest) {
    if (weight > threshold) break;
    if (items[i].weight <= 0.0) continue;
    selection.push_back(i);
    weight += items[i].weight;
  }
  if (weight <= threshold) return SolveCoveringKnapsackGreedy(items, threshold);
  std::sort(selection.begin(), selection.end());
  return selection;
}

std::vector<size_t> SolveCoveringKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                                double threshold) {
  const size_t n = items.size();
  double total_weight = 0.0;
  for (const auto& it : items) total_weight += it.weight;
  if (total_weight <= threshold) return {};

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Cheapest recall loss per unit of saved consumption first.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ra = items[a].value / std::max(items[a].weight, 1e-12);
    const double rb = items[b].value / std::max(items[b].weight, 1e-12);
    if (ra != rb) return ra < rb;
    return items[a].weight > items[b].weight;
  });
  std::vector<size_t> selection;
  double w = 0.0;
  for (size_t i : order) {
    if (w > threshold) break;
    if (items[i].weight <= 0.0) continue;
    selection.push_back(i);
    w += items[i].weight;
  }
  if (w <= threshold) return {};  // numeric corner: could not cover
  std::sort(selection.begin(), selection.end());
  return selection;
}

std::vector<size_t> SolveCoveringKnapsackBrute(const std::vector<KnapsackItem>& items,
                                               double threshold) {
  const size_t n = items.size();
  if (n > 24) return SolveCoveringKnapsackDP(items, threshold);
  std::vector<size_t> best;
  double best_value = std::numeric_limits<double>::max();
  bool found = false;
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    double v = 0.0;
    double w = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        v += items[i].value;
        w += items[i].weight;
      }
    }
    if (w > threshold && v < best_value) {
      best_value = v;
      found = true;
      best.clear();
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) best.push_back(i);
      }
    }
  }
  if (!found) return {};
  return best;
}

}  // namespace cepshed
