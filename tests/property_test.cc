// Copyright (c) the CepShed authors. Licensed under the Apache License 2.0.
//
// Property-based tests of the paper's formal foundations (§III-A):
//  - monotonicity in the stream: evaluating over a projection of the
//    stream (input shedding) yields a subset of the original matches;
//  - monotonicity in the partial matches: removing partial matches (state
//    shedding) yields a subset of the complete matches;
//  - join-index transparency: the engine with and without indexes
//    produces identical match sets;
//  - the false-positive behaviour of non-monotonic (negation) queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <vector>

#include "src/cep/engine.h"
#include "src/cep/nfa.h"
#include "src/shed/cost_model.h"
#include "src/shed/offline_estimator.h"
#include "src/workload/ds1.h"
#include "src/workload/queries.h"
#include "tests/test_util.h"

namespace cepshed {
namespace {

std::set<std::string> MatchKeys(const std::vector<Match>& matches) {
  std::set<std::string> keys;
  for (const Match& m : matches) keys.insert(m.Key());
  return keys;
}

std::vector<Match> RunStream(const std::shared_ptr<const Nfa>& nfa,
                             const std::vector<EventPtr>& events,
                             EngineOptions opts = {}) {
  Engine engine(nfa, opts);
  std::vector<Match> out;
  for (const EventPtr& e : events) engine.Process(e, &out);
  return out;
}

class MonotonicityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  MonotonicityTest() : schema_(MakeDs1Schema()) {}

  std::vector<EventPtr> MakeStream(uint64_t seed, size_t n = 600) {
    Ds1Options opts;
    opts.num_events = n;
    opts.event_gap = 5;
    opts.seed = seed;
    const EventStream stream = GenerateDs1(schema_, opts);
    return {stream.begin(), stream.end()};
  }

  Schema schema_;
};

TEST_P(MonotonicityTest, StreamProjectionYieldsMatchSubsetQ1) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam());
  const auto full = MatchKeys(RunStream(*nfa, events));

  // Drop every third event (an order-preserving projection).
  std::vector<EventPtr> projected;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i % 3 != 0) projected.push_back(events[i]);
  }
  const auto reduced = MatchKeys(RunStream(*nfa, projected));
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "projection created a new match";
  }
  EXPECT_LE(reduced.size(), full.size());
}

TEST_P(MonotonicityTest, StreamProjectionYieldsMatchSubsetKleene) {
  auto nfa = Nfa::Compile(*queries::Q2(4, "2ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 77);
  const auto full = MatchKeys(RunStream(*nfa, events));

  Rng rng(GetParam());
  std::vector<EventPtr> projected;
  for (const auto& e : events) {
    if (!rng.Bernoulli(0.3)) projected.push_back(e);
  }
  const auto reduced = MatchKeys(RunStream(*nfa, projected));
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "projection created a new match";
  }
}

TEST_P(MonotonicityTest, StateSheddingYieldsMatchSubset) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 1234);
  const auto full = MatchKeys(RunStream(*nfa, events));

  // Kill a random subset of partial matches after every event.
  Engine engine(*nfa, EngineOptions{});
  Rng rng(GetParam());
  std::vector<Match> out;
  for (const EventPtr& e : events) {
    engine.Process(e, &out);
    engine.store().ForEachAlive([&](PartialMatch* pm) {
      if (rng.Bernoulli(0.2)) engine.store().Kill(pm);
    });
  }
  const auto reduced = MatchKeys(out);
  for (const auto& key : reduced) {
    EXPECT_TRUE(full.count(key) > 0) << "state shedding created a new match";
  }
  EXPECT_LT(reduced.size(), full.size());
}

TEST_P(MonotonicityTest, IndexOnOffProduceIdenticalMatches) {
  for (const auto& query :
       {*queries::Q1("4ms"), *queries::Q2(3, "2ms"), *queries::Q4("4ms")}) {
    auto nfa = Nfa::Compile(query, &schema_);
    ASSERT_TRUE(nfa.ok());
    const auto events = MakeStream(GetParam() + 555);
    EngineOptions on;
    on.use_join_index = true;
    EngineOptions expr_keys = on;
    expr_keys.index_expression_keys = true;
    EngineOptions off;
    off.use_join_index = false;
    const auto a = MatchKeys(RunStream(*nfa, events, on));
    const auto b = MatchKeys(RunStream(*nfa, events, off));
    const auto c = MatchKeys(RunStream(*nfa, events, expr_keys));
    EXPECT_EQ(a, b) << query.name;
    EXPECT_EQ(a, c) << query.name;
  }
}

TEST_P(MonotonicityTest, CompactionPreservesMatches) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 999);

  EngineOptions eager;
  eager.evict_interval = 8;
  eager.compact_min_dead = 1;
  eager.compact_dead_fraction = 0.0;
  EngineOptions lazy;
  lazy.evict_interval = 512;
  lazy.compact_min_dead = 1u << 30;

  const auto a = MatchKeys(RunStream(*nfa, events, eager));
  const auto b = MatchKeys(RunStream(*nfa, events, lazy));
  EXPECT_EQ(a, b);
}

TEST_P(MonotonicityTest, NegationSheddingOnlyAddsFalsePositives) {
  auto nfa = Nfa::Compile(*queries::Q4("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());
  const auto events = MakeStream(GetParam() + 321);
  const auto truth = MatchKeys(RunStream(*nfa, events));

  // Shed witnesses only: every true match must still be found (recall 1);
  // extra matches may appear (precision < 1) — the paper's Fig. 14.
  Engine engine(*nfa, EngineOptions{});
  Rng rng(GetParam());
  std::vector<Match> out;
  for (const EventPtr& e : events) {
    engine.Process(e, &out);
    engine.store().ForEachAliveWitness([&](PartialMatch* pm) {
      if (rng.Bernoulli(0.5)) engine.store().Kill(pm);
    });
  }
  const auto shed = MatchKeys(out);
  for (const auto& key : truth) {
    EXPECT_TRUE(shed.count(key) > 0) << "witness shedding lost a true match";
  }
  EXPECT_GE(shed.size(), truth.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest, ::testing::Range<uint64_t>(1, 13));

/// Shedding monotonicity (the budget axis of the paper's Fig. 4/5): a
/// deterministic utility ranking keeps *nested* event subsets as the
/// budget grows, so — by stream-projection monotonicity — the match sets
/// are nested too and recall never decreases with budget.
class SheddingMonotonicityTest : public ::testing::Test {
 protected:
  SheddingMonotonicityTest() : schema_(MakeDs1Schema()) {}

  EventStream MakeStream(uint64_t seed, size_t n) {
    Ds1Options opts;
    opts.num_events = n;
    opts.event_gap = 5;
    opts.seed = seed;
    return GenerateDs1(schema_, opts);
  }

  /// Events of `stream` ranked by (utility desc, seq asc): a strict total
  /// order, so the top-k prefix for a larger k contains the one for a
  /// smaller k — kept sets are nested by construction.
  std::vector<size_t> RankByUtility(const EventStream& stream,
                                    const CostModel& model) {
    std::vector<size_t> order(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) order[i] = i;
    std::vector<double> utility(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      utility[i] = model.EventUtility(*stream[i]);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (utility[a] != utility[b]) return utility[a] > utility[b];
      return a < b;
    });
    return order;
  }

  /// Keeps the `frac` highest-ranked events, preserving stream order.
  std::vector<EventPtr> KeepTop(const EventStream& stream,
                                const std::vector<size_t>& order, double frac) {
    const size_t k = static_cast<size_t>(frac * static_cast<double>(stream.size()));
    std::vector<bool> keep(stream.size(), false);
    for (size_t i = 0; i < k; ++i) keep[order[i]] = true;
    std::vector<EventPtr> kept;
    kept.reserve(k);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (keep[i]) kept.push_back(stream[i]);
    }
    return kept;
  }

  static double Recall(const std::set<std::string>& truth,
                       const std::set<std::string>& found) {
    if (truth.empty()) return 1.0;
    size_t hit = 0;
    for (const auto& key : truth) hit += found.count(key);
    return static_cast<double>(hit) / static_cast<double>(truth.size());
  }

  Schema schema_;
};

TEST_F(SheddingMonotonicityTest, RecallNeverDecreasesWithBudget) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());

  auto stats = EstimateOffline(*nfa, MakeStream(41, 8000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(*nfa, CostModelOptions{});
  Rng rng(5);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  const EventStream stream = MakeStream(42, 3000);
  const std::vector<size_t> order = RankByUtility(stream, model);
  const auto truth =
      MatchKeys(RunStream(*nfa, {stream.begin(), stream.end()}));
  ASSERT_FALSE(truth.empty());

  double prev_recall = -1.0;
  std::set<std::string> prev_found;
  for (const double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto kept = KeepTop(stream, order, frac);
    const auto found = MatchKeys(RunStream(*nfa, kept));
    // Nested kept sets => nested match sets (projection monotonicity)...
    for (const auto& key : prev_found) {
      ASSERT_TRUE(found.count(key) > 0)
          << "raising the budget to " << frac << " lost a match";
    }
    // ...=> recall is monotone non-decreasing in the budget.
    const double recall = Recall(truth, found);
    EXPECT_GE(recall, prev_recall) << "at budget " << frac;
    prev_recall = recall;
    prev_found = found;
  }
  // The full budget sheds nothing: recall 1 exactly.
  EXPECT_EQ(prev_recall, 1.0);
}

TEST_F(SheddingMonotonicityTest, UtilityOrderBeatsInvertedOrder) {
  auto nfa = Nfa::Compile(*queries::Q1("4ms"), &schema_);
  ASSERT_TRUE(nfa.ok());

  auto stats = EstimateOffline(*nfa, MakeStream(43, 8000), 4, true);
  ASSERT_TRUE(stats.ok());
  CostModel model(*nfa, CostModelOptions{});
  Rng rng(6);
  ASSERT_TRUE(model.Train(*stats, &rng).ok());

  const EventStream stream = MakeStream(44, 3000);
  const std::vector<size_t> order = RankByUtility(stream, model);
  std::vector<size_t> inverted(order.rbegin(), order.rend());
  const auto truth =
      MatchKeys(RunStream(*nfa, {stream.begin(), stream.end()}));
  ASSERT_FALSE(truth.empty());

  // At the same budget, keeping the highest-utility 70% must recover more
  // true matches than keeping the lowest-utility 70% — the learned utility
  // is informative, not just a permutation. (A match needs all three of
  // its correlated events kept, so budgets at or below 0.5 recover nothing
  // under either order on this workload.)
  const double frac = 0.7;
  const double recall_best =
      Recall(truth, MatchKeys(RunStream(*nfa, KeepTop(stream, order, frac))));
  const double recall_worst =
      Recall(truth, MatchKeys(RunStream(*nfa, KeepTop(stream, inverted, frac))));
  EXPECT_GT(recall_best, recall_worst);
  EXPECT_GT(recall_best, 0.5);
}

}  // namespace
}  // namespace cepshed
